package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aft/internal/records"
	"aft/internal/storage/dynamosim"
)

func newShardedCluster(t *testing.T, nodes int, mutate ...func(*Config)) (*Cluster, *dynamosim.Store) {
	t.Helper()
	return newTestCluster(t, append([]func(*Config){func(cfg *Config) {
		cfg.Nodes = nodes
		cfg.Sharded = true
	}}, mutate...)...)
}

// TestShardedMetadataShrinks is the PR's acceptance criterion: with 8
// nodes under a uniform write workload, the sharded cluster's mean
// per-node commit-index size is at most half the broadcast cluster's.
func TestShardedMetadataShrinks(t *testing.T) {
	const nodes, txns = 8, 400
	run := func(sharded bool) float64 {
		c, _ := newTestCluster(t, func(cfg *Config) {
			cfg.Nodes = nodes
			cfg.Sharded = sharded
			// Only the explicit FlushMulticast moves records, so the
			// measurement cannot race an in-flight periodic round.
			cfg.MulticastPeriod = time.Hour
		})
		client := c.Client()
		for i := 0; i < txns; i++ {
			runTxn(t, client, map[string]string{fmt.Sprintf("key-%d", i): "v"})
		}
		c.FlushMulticast()
		return c.MeanMetadataSize()
	}
	broadcast := run(false)
	shardedSize := run(true)
	if broadcast < txns {
		t.Fatalf("broadcast mean commit-index size = %.1f, want >= %d", broadcast, txns)
	}
	if shardedSize > 0.5*broadcast {
		t.Errorf("sharded mean commit-index size %.1f > 0.5x broadcast %.1f", shardedSize, broadcast)
	}
	t.Logf("mean per-node commit-index size: broadcast=%.1f sharded=%.1f (%.2fx)",
		broadcast, shardedSize, shardedSize/broadcast)
}

// TestShardedAnyNodeServesAnyKey: ownership partitions metadata caching,
// not serveability — every node serves every key, recovering non-owned
// commit metadata from storage.
func TestShardedAnyNodeServesAnyKey(t *testing.T) {
	c, _ := newShardedCluster(t, 4)
	client := c.Client()
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		runTxn(t, client, map[string]string{keys[i]: "v-" + keys[i]})
	}
	c.FlushMulticast()

	ctx := context.Background()
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			v, err := n.Get(ctx, txid, k)
			if err != nil {
				t.Fatalf("node %s reading %s: %v", n.ID(), k, err)
			}
			if string(v) != "v-"+k {
				t.Fatalf("node %s read %s = %q", n.ID(), k, v)
			}
		}
		if err := n.AbortTransaction(ctx, txid); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedFanoutScoped: the bus delivers each record only to shard
// owners, so record×peer deliveries shrink versus broadcast's (N-1)
// fan-out.
func TestShardedFanoutScoped(t *testing.T) {
	const nodes, txns = 8, 200
	run := func(sharded bool) (deliveries, sent int64) {
		c, _ := newTestCluster(t, func(cfg *Config) {
			cfg.Nodes = nodes
			cfg.Sharded = sharded
			cfg.MulticastPeriod = time.Hour // measure explicit flushes only
		})
		client := c.Client()
		for i := 0; i < txns; i++ {
			runTxn(t, client, map[string]string{fmt.Sprintf("key-%d", i): "v"})
		}
		c.FlushMulticast()
		snap := c.Bus().Metrics().Snapshot()
		return snap.Deliveries, snap.Broadcast
	}
	bcast, _ := run(false)
	scoped, _ := run(true)
	if scoped*2 > bcast {
		t.Errorf("sharded deliveries %d not < 0.5x broadcast %d", scoped, bcast)
	}
	t.Logf("record x peer deliveries: broadcast=%d sharded=%d", bcast, scoped)
}

// TestShardedGlobalGCCollects: the scoped global GC (owner-only votes)
// still collects superseded transactions from storage.
func TestShardedGlobalGCCollects(t *testing.T) {
	c, store := newShardedCluster(t, 3)
	client := c.Client()
	const overwrites = 30
	for i := 0; i < overwrites; i++ {
		runTxn(t, client, map[string]string{"hot": fmt.Sprintf("v%d", i)})
	}
	c.FlushMulticast()
	for _, n := range c.Nodes() {
		n.SweepLocalMetadata(0)
	}
	ctx := context.Background()
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	removed, err := c.FaultManager().CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("scoped global GC collected nothing")
	}
	commits, err := store.List(ctx, records.CommitPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) >= overwrites {
		t.Errorf("commit set still has %d records after GC", len(commits))
	}
	// The newest version must survive and stay readable everywhere.
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		v, err := n.Get(ctx, txid, "hot")
		if err != nil {
			t.Fatalf("node %s reading hot after GC: %v", n.ID(), err)
		}
		if string(v) != fmt.Sprintf("v%d", overwrites-1) {
			t.Fatalf("node %s read hot = %q after GC", n.ID(), v)
		}
		n.AbortTransaction(ctx, txid)
	}
}

// TestShardedKillRebalances: killing a node moves its shards to
// survivors, whose caches warm lazily — every key stays readable.
func TestShardedKillRebalances(t *testing.T) {
	c, _ := newShardedCluster(t, 4)
	client := c.Client()
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		runTxn(t, client, map[string]string{keys[i]: "v"})
	}
	c.FlushMulticast()

	victim := c.Nodes()[0].ID()
	v0 := c.Ring().Version()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.Ring().Version(); got != v0+1 {
		t.Fatalf("ring version = %d after kill, want %d", got, v0+1)
	}
	for _, id := range c.Ring().Nodes() {
		if id == victim {
			t.Fatalf("victim %s still on the ring", victim)
		}
	}

	ctx := context.Background()
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if _, err := n.Get(ctx, txid, k); err != nil {
				t.Fatalf("node %s reading %s after kill: %v", n.ID(), k, err)
			}
		}
		n.AbortTransaction(ctx, txid)
	}
}

// TestShardedStandbyPromotionJoinsRing: a promoted standby joins the ring
// and takes ownership of shards.
func TestShardedStandbyPromotionJoinsRing(t *testing.T) {
	c, _ := newShardedCluster(t, 3, func(cfg *Config) {
		cfg.Standbys = 1
		cfg.DetectDelay = time.Millisecond
		cfg.JoinDelay = time.Millisecond
	})
	victim := c.Nodes()[0].ID()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.Nodes()) == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := len(c.Nodes()); got != 3 {
		t.Fatalf("cluster has %d nodes after promotion, want 3", got)
	}
	if got := len(c.Ring().Nodes()); got != 3 {
		t.Fatalf("ring has %d nodes after promotion, want 3", got)
	}
	for _, id := range c.Ring().Nodes() {
		if owned := c.Ring().ShardsOwnedBy(id); len(owned) == 0 {
			t.Errorf("ring member %s owns no shards", id)
		}
	}
}

// TestShardedAffinityRouting: the balancer routes first-key-hinted
// transactions to the shard owner.
func TestShardedAffinityRouting(t *testing.T) {
	c, _ := newShardedCluster(t, 4)
	client := c.Client()
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner, ok := c.Ring().Owner(key)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		txid, err := client.StartTransactionHint(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Put(ctx, txid, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := client.CommitTransaction(ctx, txid); err != nil {
			t.Fatal(err)
		}
		// The owner node must have committed it.
		n, ok := c.Node(owner)
		if !ok {
			t.Fatalf("owner %s not a live node", owner)
		}
		if n.Metrics().Snapshot().Committed == 0 {
			t.Fatalf("owner %s committed nothing after hinted txn on %s", owner, key)
		}
	}
	if placed := client.Placed(); placed != 32 {
		t.Errorf("Placed() = %d, want 32", placed)
	}
}

// TestShardedKillWarmsNewOwner is the regression test for rebalance
// staleness: the records of a killed node's shards were multicast to the
// dead owner only, so the gaining survivor would serve a stale (if
// atomic) version from its partial view forever — its local read
// succeeds, and the storage fallback only fires on a miss. The fault
// manager must re-announce moved-shard records to gaining owners.
func TestShardedKillWarmsNewOwner(t *testing.T) {
	c, _ := newShardedCluster(t, 4)
	client := c.Client()
	const overwrites = 20
	for i := 0; i < overwrites; i++ {
		runTxn(t, client, map[string]string{"hot": fmt.Sprintf("v%d", i)})
	}
	c.FlushMulticast()

	owner, ok := c.Ring().Owner("hot")
	if !ok {
		t.Fatal("no owner for hot")
	}
	if err := c.Kill(owner); err != nil {
		t.Fatal(err)
	}
	newOwner, _ := c.Ring().Owner("hot")
	n, ok := c.Node(newOwner)
	if !ok {
		t.Fatalf("new owner %s not live", newOwner)
	}

	ctx := context.Background()
	txid, err := n.StartTransaction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.Get(ctx, txid, "hot")
	if err != nil {
		t.Fatal(err)
	}
	n.AbortTransaction(ctx, txid)
	if want := fmt.Sprintf("v%d", overwrites-1); string(v) != want {
		t.Fatalf("new owner %s read %q, want %q (stale view after rebalance)", newOwner, v, want)
	}
}

// TestShardedJoinKeepsFreshness is the join-side regression test for
// rebalance staleness: the tight per-node shard cap makes a join spill
// shards BETWEEN survivors too, and a survivor gaining a shard while
// holding only its own older commit of a key would serve it forever
// (local hit, no fallback). After a join, every node must read the
// newest version of every key.
func TestShardedJoinKeepsFreshness(t *testing.T) {
	c, _ := newShardedCluster(t, 2, func(cfg *Config) {
		cfg.MulticastPeriod = time.Hour // explicit flushes only
	})
	client := c.Client()
	// An odd key count makes v0 and v1 of each key land on different
	// round-robin nodes, so a survivor gaining a shard can be one that
	// holds only the stale v0 it committed itself.
	const keys = 201
	for _, ver := range []string{"v0", "v1"} {
		for i := 0; i < keys; i++ {
			runTxn(t, client, map[string]string{fmt.Sprintf("key-%d", i): ver})
		}
	}
	c.FlushMulticast()

	ctx := context.Background()
	if _, err := c.AddNode(ctx); err != nil {
		t.Fatal(err)
	}

	// Owners must be fresh immediately: shard-affinity routes reads to
	// them, and only the rebalance re-announce keeps a gaining survivor
	// from serving its own stale commit.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		owner, ok := c.Ring().Owner(k)
		if !ok {
			t.Fatalf("no owner for %s", k)
		}
		n, ok := c.Node(owner)
		if !ok {
			t.Fatalf("owner %s of %s not live", owner, k)
		}
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		v, err := n.Get(ctx, txid, k)
		if err != nil {
			t.Fatalf("owner %s reading %s after join: %v", owner, k, err)
		}
		if string(v) != "v1" {
			t.Fatalf("owner %s read %s = %q after join, want v1 (stale survivor view)", owner, k, v)
		}
		n.AbortTransaction(ctx, txid)
	}

	// Non-owners may serve their own stale commits until the local GC
	// evicts non-owned metadata; after one sweep, every node converges
	// through the storage fallback.
	for _, n := range c.Nodes() {
		n.SweepLocalMetadata(0)
	}
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%d", i)
			v, err := n.Get(ctx, txid, k)
			if err != nil {
				t.Fatalf("node %s reading %s after sweep: %v", n.ID(), k, err)
			}
			if string(v) != "v1" {
				t.Fatalf("node %s read %s = %q after sweep, want v1", n.ID(), k, v)
			}
		}
		n.AbortTransaction(ctx, txid)
	}
}

// TestShardedCrossShardGCCollects is the regression test for the
// cross-shard GC leak: a transaction writing keys owned by DIFFERENT
// nodes is cached by each owner, but each owner only ever learns
// superseding writes for its own shards. Requiring full-write-set
// supersedence at the sweep would let such records pin every owner's
// cache (and their GC votes) forever; owners must sweep on owned-key
// supersedence only.
func TestShardedCrossShardGCCollects(t *testing.T) {
	c, store := newShardedCluster(t, 4, func(cfg *Config) {
		cfg.MulticastPeriod = time.Hour // explicit flushes only
	})
	client := c.Client()

	// Find two keys with different owners.
	keyA := "key-a"
	var keyB string
	ownerA, _ := c.Ring().Owner(keyA)
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-b%d", i)
		if o, _ := c.Ring().Owner(k); o != ownerA {
			keyB = k
			break
		}
	}

	// T1 writes both shards; T2 and T3 supersede one key each.
	runTxn(t, client, map[string]string{keyA: "t1", keyB: "t1"})
	runTxn(t, client, map[string]string{keyA: "t2"})
	runTxn(t, client, map[string]string{keyB: "t3"})
	c.FlushMulticast()
	for _, n := range c.Nodes() {
		n.SweepLocalMetadata(0)
	}

	ctx := context.Background()
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	removed, err := c.FaultManager().CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("global GC collected %d transactions, want 1 (the cross-shard T1)", len(removed))
	}
	// T1's storage footprint is gone; T2/T3 survive and serve.
	if keys, _ := store.List(ctx, records.DataPrefix); len(keys) != 2 {
		t.Errorf("storage has %d data versions after GC, want 2 (t2, t3)", len(keys))
	}
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range map[string]string{keyA: "t2", keyB: "t3"} {
			v, err := n.Get(ctx, txid, k)
			if err != nil || string(v) != want {
				t.Fatalf("node %s read %s = %q, %v; want %q", n.ID(), k, v, err, want)
			}
		}
		n.AbortTransaction(ctx, txid)
	}
}
