package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aft/internal/core"
	"aft/internal/latency"
	"aft/internal/lb"
	"aft/internal/records"
	"aft/internal/storage/dynamosim"
)

func newTestCluster(t *testing.T, mutate ...func(*Config)) (*Cluster, *dynamosim.Store) {
	t.Helper()
	store := dynamosim.New(dynamosim.Options{})
	cfg := Config{
		Nodes:           3,
		Store:           store,
		MulticastPeriod: 2 * time.Millisecond,
		PruneMulticast:  true,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, store
}

func runTxn(t *testing.T, client *lb.Balancer, kvs map[string]string) {
	t.Helper()
	ctx := context.Background()
	txid, err := client.StartTransaction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		if err := client.Put(ctx, txid, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.CommitTransaction(ctx, txid); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1}); err == nil {
		t.Fatal("missing store accepted")
	}
	if _, err := New(Config{Store: dynamosim.New(dynamosim.Options{})}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestCommitsPropagateAcrossNodes(t *testing.T) {
	c, _ := newTestCluster(t)
	client := c.Client()
	runTxn(t, client, map[string]string{"k": "v"})
	c.FlushMulticast()

	// Every node can serve the key, whichever committed it.
	ctx := context.Background()
	for _, n := range c.Nodes() {
		txid, err := n.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		v, err := n.Get(ctx, txid, "k")
		if err != nil || string(v) != "v" {
			t.Fatalf("node %s read = %q, %v", n.ID(), v, err)
		}
		n.AbortTransaction(ctx, txid)
	}
}

func TestPeriodicMulticastPropagates(t *testing.T) {
	c, _ := newTestCluster(t)
	runTxn(t, c.Client(), map[string]string{"k": "v"})
	deadline := time.After(2 * time.Second)
	for {
		all := true
		for _, n := range c.Nodes() {
			if n.MetadataSize() == 0 {
				all = false
			}
		}
		if all {
			return
		}
		select {
		case <-deadline:
			t.Fatal("multicast never propagated")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestKillRemovesNodeAndClusterKeepsServing(t *testing.T) {
	c, _ := newTestCluster(t)
	victim := c.Nodes()[0].ID()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(victim); err == nil {
		t.Fatal("double kill succeeded")
	}
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes after kill = %d", len(c.Nodes()))
	}
	for i := 0; i < 6; i++ {
		runTxn(t, c.Client(), map[string]string{fmt.Sprintf("k%d", i): "v"})
	}
}

func TestStandbyPromotionRestoresCapacity(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) {
		cfg.Standbys = 1
		cfg.DetectDelay = time.Millisecond
		cfg.JoinDelay = time.Millisecond
		cfg.Sleeper = latency.RealTime
	})
	// Write some data so the standby has a commit set to warm from.
	runTxn(t, c.Client(), map[string]string{"warm": "data"})
	c.FlushMulticast()

	victim := c.Nodes()[0].ID()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for len(c.Nodes()) < 3 {
		select {
		case <-deadline:
			t.Fatal("standby never joined")
		case <-time.After(2 * time.Millisecond):
		}
	}
	// The replacement bootstrapped from storage: it can serve "warm".
	ctx := context.Background()
	var replacement *core.Node
	for _, n := range c.Nodes() {
		if n.ID() != victim {
			replacement = n
		}
	}
	txid, _ := replacement.StartTransaction(ctx)
	v, err := replacement.Get(ctx, txid, "warm")
	if err != nil || string(v) != "data" {
		t.Fatalf("replacement read = %q, %v", v, err)
	}
}

func TestNoStandbyNoReplacement(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) {
		cfg.DetectDelay = 0
		cfg.JoinDelay = 0
	})
	c.Kill(c.Nodes()[0].ID())
	time.Sleep(20 * time.Millisecond)
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes = %d, want 2 (no standby configured)", len(c.Nodes()))
	}
}

// TestFaultManagerRecoversKilledNodesCommits is the §4.2 liveness story end
// to end: a node commits, dies before broadcasting, and the fault manager's
// storage scan makes the commit visible to the other replicas.
func TestFaultManagerRecoversKilledNodesCommits(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) {
		cfg.MulticastPeriod = time.Hour // never broadcast on its own
	})
	ctx := context.Background()
	victim := c.Nodes()[0]
	txid, err := victim.StartTransaction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim.Put(ctx, txid, "orphan", []byte("committed"))
	if _, err := victim.CommitTransaction(ctx, txid); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(victim.ID()); err != nil {
		t.Fatal(err)
	}
	// Survivors cannot see it yet.
	other := c.Nodes()[0]
	tx2, _ := other.StartTransaction(ctx)
	if _, err := other.Get(ctx, tx2, "orphan"); !errors.Is(err, core.ErrKeyNotFound) {
		t.Fatalf("pre-scan read = %v", err)
	}
	other.AbortTransaction(ctx, tx2)
	// Fault manager scan recovers it.
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	tx3, _ := other.StartTransaction(ctx)
	v, err := other.Get(ctx, tx3, "orphan")
	if err != nil || string(v) != "committed" {
		t.Fatalf("post-scan read = %q, %v", v, err)
	}
}

func TestGCLoopsDeleteSupersededData(t *testing.T) {
	c, store := newTestCluster(t, func(cfg *Config) {
		cfg.Nodes = 2
		cfg.LocalGCInterval = 2 * time.Millisecond
		cfg.GlobalGCInterval = 4 * time.Millisecond
	})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		runTxn(t, c.Client(), map[string]string{"hot": fmt.Sprintf("v%d", i)})
		// Flush after every write so each record reaches the peer before
		// the next write supersedes it. Otherwise §4.1 sender pruning can
		// (timing-dependently, e.g. under -race) withhold a record from
		// the peer entirely, and the §5.2 unanimity check then blocks the
		// global GC forever — no record is ever deletable and the wait
		// below would hit its deadline.
		c.FlushMulticast()
	}
	deadline := time.After(3 * time.Second)
	for {
		if c.FaultManager().Metrics().Snapshot().TxnsDeleted > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("global GC never deleted anything")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The latest version must always survive and be readable.
	n := c.Nodes()[0]
	txid, _ := n.StartTransaction(ctx)
	v, err := n.Get(ctx, txid, "hot")
	if err != nil || string(v) != "v19" {
		t.Fatalf("read after GC = %q, %v", v, err)
	}
	// Storage version count for "hot" is strictly below 20.
	versions, _ := store.List(ctx, records.DataKeyPrefix("hot"))
	if len(versions) >= 20 {
		t.Fatalf("GC left %d versions", len(versions))
	}
}

func TestAddNodeScalesUp(t *testing.T) {
	c, _ := newTestCluster(t)
	runTxn(t, c.Client(), map[string]string{"k": "v"})
	n, err := c.AddNode(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	// The new node bootstrapped existing data.
	ctx := context.Background()
	txid, _ := n.StartTransaction(ctx)
	v, err := n.Get(ctx, txid, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("new node read = %q, %v", v, err)
	}
}

func TestNodeLookupAndTotals(t *testing.T) {
	c, _ := newTestCluster(t)
	id := c.Nodes()[0].ID()
	if _, ok := c.Node(id); !ok {
		t.Fatal("Node lookup failed")
	}
	if _, ok := c.Node("ghost"); ok {
		t.Fatal("ghost node found")
	}
	runTxn(t, c.Client(), map[string]string{"k": "v"})
	if c.TotalCommitted() != 1 {
		t.Fatalf("total committed = %d", c.TotalCommitted())
	}
	if len(c.Bus().Peers()) != 3 {
		t.Fatalf("bus peers = %d", len(c.Bus().Peers()))
	}
}

func TestStopIdempotent(t *testing.T) {
	c, _ := newTestCluster(t)
	c.Stop()
	c.Stop()
}
