package cluster

import (
	"context"
	"sync"
	"time"
)

// The paper leaves autoscaling policy pluggable and out of scope (§4.3,
// revisited as future work in §8). This file provides the plumbing — a
// Policy interface evaluated on periodic load samples, driving AddNode /
// Kill — plus the obvious default: scale on per-node in-flight load with
// hysteresis.

// LoadSample is one observation of cluster load handed to a Policy.
type LoadSample struct {
	// Nodes is the current replica count.
	Nodes int
	// ActiveTransactions is the total number of in-flight transactions.
	ActiveTransactions int
	// CommittedDelta is the number of commits since the previous sample.
	CommittedDelta int64
	// MeanMetadataSize is the mean per-node commit-index size. In sharded
	// deployments adding nodes shrinks it (each node owns a smaller
	// keyspace share), so memory-pressure policies can scale on it; in
	// broadcast deployments it is invariant to node count.
	MeanMetadataSize float64
}

// Policy decides scaling actions: a positive return adds that many nodes,
// a negative return removes that many, zero holds.
type Policy interface {
	Decide(s LoadSample) int
}

// ThresholdPolicy is the default policy: keep per-node in-flight
// transactions between Low and High watermarks, never dropping below
// MinNodes or exceeding MaxNodes. Consecutive-breach hysteresis avoids
// flapping on transient spikes.
type ThresholdPolicy struct {
	// High and Low are per-node in-flight transaction watermarks.
	High, Low float64
	// MinNodes and MaxNodes bound the fleet (MinNodes >= 1).
	MinNodes, MaxNodes int
	// Patience is how many consecutive breaching samples trigger action;
	// 0 means 2.
	Patience int

	overStreak, underStreak int
}

// Decide implements Policy.
func (p *ThresholdPolicy) Decide(s LoadSample) int {
	patience := p.Patience
	if patience == 0 {
		patience = 2
	}
	if s.Nodes == 0 {
		return 0
	}
	perNode := float64(s.ActiveTransactions) / float64(s.Nodes)
	switch {
	case perNode > p.High && s.Nodes < p.MaxNodes:
		p.overStreak++
		p.underStreak = 0
		if p.overStreak >= patience {
			p.overStreak = 0
			return 1
		}
	case perNode < p.Low && s.Nodes > p.MinNodes:
		p.underStreak++
		p.overStreak = 0
		if p.underStreak >= patience {
			p.underStreak = 0
			return -1
		}
	default:
		p.overStreak, p.underStreak = 0, 0
	}
	return 0
}

// Autoscaler samples cluster load on an interval and applies a Policy.
type Autoscaler struct {
	cluster  *Cluster
	policy   Policy
	interval time.Duration

	mu            sync.Mutex
	stop          chan struct{}
	done          sync.WaitGroup
	lastCommitted int64
	scaleUps      int
	scaleDowns    int
}

// NewAutoscaler wires policy to c with the given sampling interval (0
// defaults to 1s).
func NewAutoscaler(c *Cluster, policy Policy, interval time.Duration) *Autoscaler {
	if interval <= 0 {
		interval = time.Second
	}
	return &Autoscaler{cluster: c, policy: policy, interval: interval}
}

// Start launches the sampling loop; it is a no-op if already running.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	stop := a.stop
	a.done.Add(1)
	go func() {
		defer a.done.Done()
		ticker := time.NewTicker(a.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				a.Step(context.Background())
			}
		}
	}()
}

// Step takes one sample and applies the policy's decision; exposed so
// tests and simulations can drive the scaler deterministically.
func (a *Autoscaler) Step(ctx context.Context) {
	nodes := a.cluster.Nodes()
	sample := LoadSample{Nodes: len(nodes)}
	totalMeta := 0
	for _, n := range nodes {
		sample.ActiveTransactions += n.ActiveTransactions()
		totalMeta += n.MetadataSize()
	}
	if len(nodes) > 0 {
		sample.MeanMetadataSize = float64(totalMeta) / float64(len(nodes))
	}
	committed := a.cluster.TotalCommitted()
	a.mu.Lock()
	sample.CommittedDelta = committed - a.lastCommitted
	a.lastCommitted = committed
	a.mu.Unlock()

	delta := a.policy.Decide(sample)
	switch {
	case delta > 0:
		for i := 0; i < delta; i++ {
			if _, err := a.cluster.AddNode(ctx); err != nil {
				return
			}
			a.mu.Lock()
			a.scaleUps++
			a.mu.Unlock()
		}
	case delta < 0:
		for i := 0; i < -delta; i++ {
			nodes := a.cluster.Nodes()
			if len(nodes) == 0 {
				return
			}
			// Retire an arbitrary replica gracefully (final multicast
			// flush, no standby promotion); its in-flight transactions
			// fail over like any node loss (§3.3.1).
			if err := a.cluster.RemoveNode(nodes[len(nodes)-1].ID()); err != nil {
				return
			}
			a.mu.Lock()
			a.scaleDowns++
			a.mu.Unlock()
		}
	}
}

// Stats returns the number of scale-up and scale-down actions taken.
func (a *Autoscaler) Stats() (ups, downs int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scaleUps, a.scaleDowns
}

// Stop halts the sampling loop.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if a.stop == nil {
		a.mu.Unlock()
		return
	}
	close(a.stop)
	a.stop = nil
	a.mu.Unlock()
	a.done.Wait()
}
