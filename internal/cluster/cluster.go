// Package cluster assembles full AFT deployments: N replica nodes over one
// shared storage backend, the multicast fabric, per-node local GC loops,
// the fault manager / global GC, a round-robin load balancer, and standby
// nodes for failure recovery.
//
// Substitution note (DESIGN.md §2): the paper deploys each node and the
// fault manager in Docker containers under Kubernetes (§4.3) and relies on
// Kubernetes for membership. This package plays both roles in-process: it
// owns membership, detects injected failures after a configurable delay
// (the paper observes ~5 s), and promotes a pre-allocated standby after a
// configurable warm-up delay modeling container download plus metadata
// cache warming (~45-50 s in Figure 10).
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"aft/internal/core"
	"aft/internal/faultmgr"
	"aft/internal/idgen"
	"aft/internal/latency"
	"aft/internal/lb"
	"aft/internal/multicast"
	"aft/internal/records"
	"aft/internal/shard"
	"aft/internal/storage"
	"aft/internal/telemetry"
)

// Config parameterizes a deployment.
type Config struct {
	// Nodes is the initial replica count. Required >= 1.
	Nodes int
	// Standbys is the number of pre-allocated replacement nodes ("we
	// pre-allocate standby nodes to avoid having to wait for new EC2 VMs
	// to start", §6.7).
	Standbys int
	// Store is the shared storage backend. Required.
	Store storage.Store
	// Node is the per-node configuration template; NodeID and Store are
	// overridden per replica.
	Node core.Config
	// MulticastPeriod is the commit broadcast period (§4; paper: 1 s).
	// Zero defaults to 1 s.
	MulticastPeriod time.Duration
	// PruneMulticast enables the §4.1 supersedence pruning (on in the
	// paper; exposed for the ablation bench).
	PruneMulticast bool
	// LocalGCInterval runs each node's metadata sweep (§5.1); zero
	// disables local GC.
	LocalGCInterval time.Duration
	// GlobalGCInterval runs the fault manager's storage scan and global
	// collection (§4.2, §5.2); zero disables them.
	GlobalGCInterval time.Duration
	// DetectDelay is the failure-detection latency (~5 s in §6.7).
	DetectDelay time.Duration
	// JoinDelay models replacement-node warm-up: container download plus
	// metadata cache warming (~45-50 s in Figure 10).
	JoinDelay time.Duration
	// Sleeper scales the Detect/Join delays (experiments run faster than
	// real time); nil means no sleeping at all.
	Sleeper *latency.Sleeper
	// Clock is shared by all nodes; nil selects the wall clock.
	Clock idgen.Clock
	// Sharded partitions metadata ownership across nodes with a
	// consistent-hash ring (internal/shard): multicast delivers each
	// commit record only to the owners of the shards its write set
	// touches, nodes cache and GC-vote only for owned shards, and the
	// load balancer routes first-key-hinted transactions to the owner.
	// Read-atomic guarantees are unchanged — any node still serves any
	// transaction, recovering non-owned metadata from storage on demand.
	Sharded bool
	// NumShards and VNodes tune the ring; 0 selects shard.DefaultShards /
	// shard.DefaultVNodes. Ignored unless Sharded.
	NumShards, VNodes int
	// Events, when non-nil, is the cluster-wide flight-recorder journal:
	// lifecycle transitions (node kills, standby promotions, bootstrap
	// watermark cuts) are recorded here, and it is threaded into every
	// node's config so per-node anomalies (sheds, budget spills) land in
	// the same timeline.
	Events *telemetry.Journal
	// TraceCollector, when non-nil, turns on cross-node trace stitching:
	// every node gets its own tracer (unless the Node template already
	// carries one) whose retained traces and foreign spans forward here,
	// and the fault manager attributes recovery work to sampled traces
	// the same way. Serve the collector's Handler as the cluster /traces.
	TraceCollector *telemetry.TraceCollector
	// TraceSampleEvery is the self-sampling rate for cluster-built
	// tracers (1-in-N); 0 keeps the tracer default, <0 disables
	// self-sampling (client-sampled and slow traces are still kept).
	TraceSampleEvery int
	// IncrementalBootstrap makes node joins (including standby promotions)
	// warm up incrementally: the fault manager pushes its in-memory commit
	// view to the joiner, which then fetches from storage only records
	// newer than that view — O(delta the manager missed) instead of
	// O(history). Anything older that the manager also missed stays
	// recoverable on demand through the joiner's partial-metadata read
	// fallback. Ignored in Sharded mode, where Bootstrap is already scoped
	// to the joiner's shard share.
	IncrementalBootstrap bool
}

type member struct {
	node   *core.Node
	mc     *multicast.Multicaster
	tracer *telemetry.Tracer // nil unless the cluster built one
	stop   chan struct{}     // stops the local GC loop
}

// Cluster is a running deployment.
type Cluster struct {
	cfg      Config
	bus      *multicast.Bus
	fm       *faultmgr.Manager
	balancer *lb.Balancer
	ring     *shard.Ring // nil unless cfg.Sharded

	mu       sync.Mutex
	members  map[string]*member
	standbys int
	nextID   int
	stopped  bool
	bg       sync.WaitGroup
	stopGC   chan struct{}
}

// New validates cfg and assembles a stopped cluster; call Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("cluster: Config.Store is required")
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.MulticastPeriod <= 0 {
		cfg.MulticastPeriod = time.Second
	}
	c := &Cluster{
		cfg:      cfg,
		bus:      multicast.NewBus(),
		balancer: lb.New(),
		members:  make(map[string]*member),
		standbys: cfg.Standbys,
		stopGC:   make(chan struct{}),
	}
	c.fm = faultmgr.New(cfg.Store, membershipFunc(c.fmNodes))
	c.bus.Tap(c.fm.Ingest)
	c.balancer.SetJournal(cfg.Events)
	if cfg.TraceCollector != nil {
		// The fault manager is its own "node" on the stitched view: its
		// ingest/recover/announce spans carry the faultmgr attribution.
		fmTracer := telemetry.NewTracer(telemetry.TracerOptions{
			Node: "faultmgr", SampleEvery: -1,
		})
		fmTracer.SetSink(cfg.TraceCollector)
		c.fm.SetTracer(fmTracer)
	}
	if cfg.Sharded {
		c.ring = shard.New(cfg.NumShards, cfg.VNodes)
		owners := func(rec *records.CommitRecord) []string {
			return c.ring.OwnersForKeys(rec.WriteSet)
		}
		c.bus.SetRouter(owners)
		c.fm.SetScope(owners)
		c.balancer.SetPlacer(c.ring.Owner)
	}
	return c, nil
}

type membershipFunc func() []faultmgr.Node

func (f membershipFunc) Nodes() []faultmgr.Node { return f() }

func (c *Cluster) fmNodes() []faultmgr.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]faultmgr.Node, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m.node)
	}
	return out
}

// Start boots the initial replicas and background processes.
func (c *Cluster) Start(ctx context.Context) error {
	for i := 0; i < c.cfg.Nodes; i++ {
		if _, err := c.addNode(ctx, false); err != nil {
			return err
		}
	}
	if c.cfg.GlobalGCInterval > 0 {
		c.bg.Add(1)
		go c.globalGCLoop()
	}
	return nil
}

// addNode creates, bootstraps, and registers one replica. When warmup is
// true the join is delayed by JoinDelay first (standby promotion path).
func (c *Cluster) addNode(ctx context.Context, warmup bool) (*core.Node, error) {
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("aft-%d", c.nextID)
	c.mu.Unlock()

	if warmup {
		// Container download + metadata cache warm-up (§6.7).
		c.cfg.Sleeper.Sleep(c.cfg.JoinDelay)
	}
	nodeCfg := c.cfg.Node
	nodeCfg.NodeID = id
	nodeCfg.Store = c.cfg.Store
	if nodeCfg.Clock == nil {
		nodeCfg.Clock = c.cfg.Clock
	}
	if nodeCfg.Events == nil {
		nodeCfg.Events = c.cfg.Events
	}
	var tracer *telemetry.Tracer
	if c.cfg.TraceCollector != nil && nodeCfg.Tracer == nil {
		tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Node: id, SampleEvery: c.cfg.TraceSampleEvery,
		})
		tracer.SetSink(c.cfg.TraceCollector)
		nodeCfg.Tracer = tracer
	}
	node, err := core.NewNode(nodeCfg)
	if err != nil {
		return nil, err
	}
	if c.ring != nil {
		// Register on the bus BEFORE joining the ring: the instant the
		// ring routes a shard here, scoped multicast must be able to
		// deliver (FlushPeer silently skips owners not on the bus).
		// Then join the ring before bootstrapping so warm-up covers
		// exactly the shards this node owns. The ownership closure
		// reads live ring state, so later rebalances apply without
		// re-wiring.
		c.bus.Register(node)
		// The tight per-node cap means a join also spills shards BETWEEN
		// survivors, not only to the joiner — warm those survivors from
		// the fault manager just like a leave does. (The joiner itself
		// is not in membership yet; its scoped Bootstrap below covers
		// its own shards.)
		c.reannounceForPlan(c.ring.AddNode(id))
		node.SetOwnership(func(key string) bool { return c.ring.OwnsKey(id, key) })
	}
	bootstrap := node.Bootstrap
	if c.cfg.IncrementalBootstrap && c.ring == nil {
		// Recover commits a dead node persisted but never announced (§4.2)
		// BEFORE cutting the watermark. The tap-fed view alone can hold a
		// key's older version while missing its newest (the writer died
		// pre-flush); announcing that view and skipping everything below
		// its maximum would freeze the joiner on the stale version — it
		// has resident candidates, so its reads never consult storage.
		// After a scan the manager holds the newest durable version of
		// every key it knows at all, and the watermark cut is sound. If
		// the scan fails (storage fault mid-join), fall back to a full
		// cold-start bootstrap rather than trust a watermark with holes.
		if err := c.fm.ScanStorage(ctx); err == nil {
			since := c.fm.AnnounceTo(node)
			c.cfg.Events.Record(telemetry.EventBootstrapWatermark, id, "",
				"since", since)
			bootstrap = func(ctx context.Context) error {
				return node.BootstrapSince(ctx, since)
			}
		}
	}
	bootStart := time.Now()
	if err := bootstrap(ctx); err != nil {
		if c.ring != nil {
			c.reannounceForPlan(c.ring.RemoveNode(id))
			c.bus.Unregister(id)
		}
		return nil, fmt.Errorf("cluster: bootstrapping %s: %w", id, err)
	}
	// The join itself is a system trace on the new node's tracer, so a
	// promotion's warm-up cost shows up on the stitched view next to the
	// transactions it delayed.
	if tracer != nil {
		jt := tracer.BeginSystem("cluster.join")
		jt.AddSpan("node.bootstrap", bootStart, time.Since(bootStart),
			map[string]string{"warmup": fmt.Sprintf("%v", warmup)})
		jt.Finish("joined")
	}
	m := &member{
		node:   node,
		mc:     multicast.NewMulticaster(c.bus, node, c.cfg.MulticastPeriod, c.cfg.PruneMulticast),
		tracer: tracer,
		stop:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.stopped {
		// The cluster shut down while this node (e.g. a standby being
		// promoted) was warming up; do not register or start loops.
		c.mu.Unlock()
		if c.ring != nil {
			c.reannounceForPlan(c.ring.RemoveNode(id))
			c.bus.Unregister(id)
		}
		return nil, fmt.Errorf("cluster: stopped")
	}
	m.mc.Start()
	if c.cfg.LocalGCInterval > 0 {
		c.bg.Add(1)
		go c.localGCLoop(m)
	}
	// The balancer entry must be visible no later than membership: a
	// caller polling Nodes() for a promotion to complete (the chaos
	// scheduler does) must be able to route to the new node the instant
	// it appears, or the routing schedule depends on this goroutine
	// winning a race.
	c.balancer.Add(node)
	c.members[id] = m
	c.mu.Unlock()
	return node, nil
}

func (c *Cluster) localGCLoop(m *member) {
	defer c.bg.Done()
	ticker := time.NewTicker(c.cfg.LocalGCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.node.SweepLocalMetadata(0)
			if c.cfg.Node.MetadataBudgetBytes > 0 {
				// Best-effort: a storage error mid-enforcement just leaves
				// memory relief to the next tick.
				_, _ = m.node.EnforceBudget(context.Background())
			}
		}
	}
}

func (c *Cluster) globalGCLoop() {
	defer c.bg.Done()
	// GC storage work runs under a context cancelled at Stop, so a large
	// in-flight collection round never delays shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-c.stopGC
		cancel()
	}()
	ticker := time.NewTicker(c.cfg.GlobalGCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopGC:
			return
		case <-ticker.C:
			_ = c.fm.ScanStorage(ctx)
			// Bound one round so the loop stays responsive; the next
			// tick continues where this one left off (oldest first).
			_, _ = c.fm.CollectOnce(ctx, 5000)
			// Reclaim spill data orphaned by crashed transactions; the
			// grace period is one minute of commit-timestamp time.
			if cutoff := time.Now().Add(-time.Minute).UnixNano(); cutoff > 0 {
				_, _ = c.fm.SweepSpills(ctx, cutoff)
			}
		}
	}
}

// Kill simulates a crash of the named node: it vanishes from the balancer
// and multicast fabric without flushing its pending broadcasts (the §4.2
// liveness hazard). If a standby is available, a replacement is promoted in
// the background after DetectDelay + JoinDelay (§6.7).
func (c *Cluster) Kill(nodeID string) error {
	c.mu.Lock()
	m, ok := c.members[nodeID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", nodeID)
	}
	delete(c.members, nodeID)
	close(m.stop)
	haveStandby := c.standbys > 0
	if haveStandby {
		c.standbys--
	}
	c.mu.Unlock()

	c.cfg.Events.Record(telemetry.EventNodeKill, nodeID, "",
		"standby_available", fmt.Sprintf("%v", haveStandby))
	c.balancer.Remove(nodeID)
	m.mc.Kill()
	if c.ring != nil {
		// Rebalance: the dead node's shards move to survivors. Warm the
		// gaining owners from the fault manager's global view — their
		// multicast history for those shards went to the dead node, and
		// a stale-but-valid local version would otherwise keep serving
		// (the storage fallback only fires on a local miss).
		c.reannounceForPlan(c.ring.RemoveNode(nodeID))
	}

	if haveStandby {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			// Failure detection (~5 s, §6.7), then standby warm-up.
			c.cfg.Sleeper.Sleep(c.cfg.DetectDelay)
			// A promotion can fail transiently — its bootstrap reads the
			// Transaction Commit Set through the same storage layer whose
			// flakiness caused failovers to matter in the first place.
			// Retry with the join warm-up paid only once; exhausting the
			// budget (or cluster shutdown) leaves the cluster one node
			// short, recoverable by the next Kill or a manual AddNode.
			for attempt := 0; attempt < promotionAttempts; attempt++ {
				n, err := c.addNode(context.Background(), attempt == 0)
				if err == nil {
					c.cfg.Events.Record(telemetry.EventPromotion, n.ID(), "",
						"replaces", nodeID,
						"attempt", fmt.Sprintf("%d", attempt+1))
					return
				}
				if c.isStopped() {
					return
				}
				c.cfg.Sleeper.Sleep(c.cfg.DetectDelay)
			}
		}()
	}
	return nil
}

// promotionAttempts bounds standby-promotion retries after a node kill.
// Generous on purpose: a promotion bootstraps through the same storage
// whose failure modes are being recovered from, so several attempts can
// plausibly hit transient faults before one lands.
const promotionAttempts = 10

// isStopped reports whether Stop has run.
func (c *Cluster) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// RemoveNode gracefully retires a replica (scale-down): it leaves the
// balancer and multicast fabric with a final broadcast flush, and no
// standby replacement is triggered. In-flight transactions pinned to it
// fail over like any node loss (§3.3.1).
func (c *Cluster) RemoveNode(nodeID string) error {
	c.mu.Lock()
	m, ok := c.members[nodeID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %q", nodeID)
	}
	delete(c.members, nodeID)
	close(m.stop)
	c.mu.Unlock()

	c.balancer.Remove(nodeID)
	m.mc.Stop() // graceful: flush pending commit broadcasts
	if c.ring != nil {
		c.reannounceForPlan(c.ring.RemoveNode(nodeID))
	}
	return nil
}

// reannounceForPlan warms every shard-gaining node of a rebalance plan
// with the fault manager's records for its gained shards. Node joins need
// no push — their scoped Bootstrap reads the commit set from storage —
// but survivors of a leave would otherwise keep partial shard views.
func (c *Cluster) reannounceForPlan(plan shard.Plan) {
	if len(plan.Moves) == 0 {
		return
	}
	gainer := make(map[int]string, len(plan.Moves)) // moved shard -> gaining node
	for _, mv := range plan.Moves {
		if mv.To != "" {
			gainer[mv.Shard] = mv.To
		}
	}
	c.fm.Reannounce(func(rec *records.CommitRecord) []string {
		var targets []string
	keys:
		for _, k := range rec.WriteSet {
			to, ok := gainer[c.ring.ShardOf(k)]
			if !ok {
				continue
			}
			for _, seen := range targets {
				if seen == to {
					continue keys
				}
			}
			targets = append(targets, to)
		}
		return targets
	})
}

// AddNode manually scales the cluster up by one replica.
func (c *Cluster) AddNode(ctx context.Context) (*core.Node, error) {
	return c.addNode(ctx, false)
}

// Client returns the deployment's load-balanced client surface.
func (c *Cluster) Client() *lb.Balancer { return c.balancer }

// Ring returns the shard ring, or nil for non-sharded deployments.
func (c *Cluster) Ring() *shard.Ring { return c.ring }

// MeanMetadataSize returns the mean per-node commit-index size — the
// quantity sharding shrinks (each node caches only its keyspace share).
func (c *Cluster) MeanMetadataSize() float64 {
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	total := 0
	for _, n := range nodes {
		total += n.MetadataSize()
	}
	return float64(total) / float64(len(nodes))
}

// Bus returns the multicast fabric (metrics, taps).
func (c *Cluster) Bus() *multicast.Bus { return c.bus }

// FaultManager returns the deployment's fault manager / global GC.
func (c *Cluster) FaultManager() *faultmgr.Manager { return c.fm }

// Nodes returns the live replicas.
func (c *Cluster) Nodes() []*core.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*core.Node, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m.node)
	}
	return out
}

// Node returns a live replica by ID.
func (c *Cluster) Node(id string) (*core.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return nil, false
	}
	return m.node, true
}

// FlushMulticast runs one broadcast round on every live node, in node-ID
// order (tests and deterministic harnesses). Order matters under §4.1
// pruning: a node flushing after it merged another node's round prunes
// against the newer state, so an unordered walk would make the delivered
// record sets — and everything downstream of them, like local-GC votes —
// depend on map iteration order.
func (c *Cluster) FlushMulticast() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.members))
	byID := make(map[string]*member, len(c.members))
	for id, m := range c.members {
		ids = append(ids, id)
		byID[id] = m
	}
	c.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		byID[id].mc.Flush()
	}
}

// Stop shuts down every node and background loop.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	members := make([]*member, 0, len(c.members))
	ids := make([]string, 0, len(c.members))
	for id, m := range c.members {
		members = append(members, m)
		ids = append(ids, id)
	}
	c.members = make(map[string]*member)
	close(c.stopGC)
	c.mu.Unlock()

	for i, m := range members {
		c.balancer.Remove(ids[i])
		close(m.stop)
		m.mc.Stop()
	}
	c.bg.Wait()
}

// TotalCommitted sums committed-transaction counts across live nodes.
func (c *Cluster) TotalCommitted() int64 {
	var total int64
	for _, n := range c.Nodes() {
		total += n.Metrics().Snapshot().Committed
	}
	return total
}
