package cluster

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"aft/internal/latency"
	"aft/internal/telemetry"
)

// TestStitchedTraceAcrossNodes is the observability plane's acceptance
// path: one traced transaction commits on a node that is killed BEFORE
// its multicast round runs, so the commit record reaches the rest of
// the cluster only through the fault manager's storage scan (§4.2).
// The stitched trace on the collector must then show the single trace
// ID resolved across at least two distinct participants: the serving
// node's own spans, the fault manager's recover/announce spans, and the
// survivors' multicast-delivery spans.
func TestStitchedTraceAcrossNodes(t *testing.T) {
	collector := telemetry.NewTraceCollector(0)
	c, _ := newTestCluster(t, func(cfg *Config) {
		cfg.MulticastPeriod = time.Hour // never broadcast on its own
		cfg.TraceCollector = collector
	})
	ctx := context.Background()

	traceID := telemetry.MintTraceID("client")
	tctx := telemetry.WithTraceContext(ctx, telemetry.TraceContext{ID: traceID, Sampled: true})
	victim := c.Nodes()[0]
	txid, err := victim.StartTransaction(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Put(tctx, txid, "stitched", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := victim.CommitTransaction(tctx, txid); err != nil {
		t.Fatal(err)
	}
	victimID := victim.ID()
	if err := c.Kill(victimID); err != nil {
		t.Fatal(err)
	}
	// The record was persisted but never announced; the scan recovers it
	// and re-announces to the survivors.
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}

	st, ok := collector.Lookup(traceID)
	if !ok {
		t.Fatalf("trace %s not stitched on the collector", traceID)
	}
	if len(st.Nodes) < 2 {
		t.Fatalf("stitched trace spans %v nodes, want >= 2 distinct", st.Nodes)
	}
	has := func(node string) bool {
		for _, n := range st.Nodes {
			if n == node {
				return true
			}
		}
		return false
	}
	if !has(victimID) {
		t.Fatalf("stitched nodes %v missing the serving node %s", st.Nodes, victimID)
	}
	if !has("faultmgr") {
		t.Fatalf("stitched nodes %v missing the fault manager", st.Nodes)
	}
	survivors := 0
	for _, n := range c.Nodes() {
		if has(n.ID()) {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatalf("stitched nodes %v include no survivor (delivery spans missing)", st.Nodes)
	}
	// Every span must carry its origin node for per-node attribution.
	for _, sp := range st.Spans {
		if sp.Attrs["node"] == "" {
			t.Fatalf("span %s missing node attribution", sp.Name)
		}
	}
}

// TestEventJournalDeterministicAcrossRuns re-runs one seeded
// kill+promotion campaign and requires the flight recorder's
// deterministic dump to be byte-identical: the journal is evidence in
// chaos verdicts, so its locked fields must not smuggle in wall-clock
// or ordering nondeterminism.
func TestEventJournalDeterministicAcrossRuns(t *testing.T) {
	campaign := func() []byte {
		events := telemetry.NewJournal(telemetry.JournalOptions{})
		c, _ := newTestCluster(t, func(cfg *Config) {
			cfg.MulticastPeriod = time.Hour
			cfg.Events = events
			cfg.Standbys = 1
			cfg.DetectDelay = time.Millisecond
			cfg.JoinDelay = time.Millisecond
			cfg.Sleeper = latency.RealTime
		})
		runTxn(t, c.Client(), map[string]string{"warm": "data"})
		c.FlushMulticast()
		// Nodes() iterates a map; sort so the seeded campaign kills the
		// same victim every run.
		ids := make([]string, 0, len(c.Nodes()))
		for _, n := range c.Nodes() {
			ids = append(ids, n.ID())
		}
		sort.Strings(ids)
		if err := c.Kill(ids[0]); err != nil {
			t.Fatal(err)
		}
		deadline := time.After(2 * time.Second)
		for len(events.Snapshot(telemetry.EventFilter{Type: telemetry.EventPromotion})) == 0 {
			select {
			case <-deadline:
				t.Fatal("promotion never journaled")
			case <-time.After(2 * time.Millisecond):
			}
		}
		c.Stop()
		return events.DumpDeterministic()
	}
	a := campaign()
	b := campaign()
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded campaign journals differ:\nrun A:\n%s\nrun B:\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("campaign journal empty")
	}
}

// TestScrapeDuringKillAndPromotion scrapes the cluster registry
// concurrently with node kills and standby promotions (run under
// -race): a scrape must never panic and never observe a half-registered
// node — within one scrape, every per-node family reflects the same
// membership snapshot.
func TestScrapeDuringKillAndPromotion(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) {
		cfg.MulticastPeriod = time.Hour
		cfg.Events = telemetry.NewJournal(telemetry.JournalOptions{})
		cfg.TraceCollector = telemetry.NewTraceCollector(0)
		cfg.Standbys = 2
		cfg.DetectDelay = time.Millisecond
		cfg.JoinDelay = time.Millisecond
		cfg.Sleeper = latency.RealTime
	})
	reg := telemetry.NewRegistry()
	c.RegisterTelemetry(reg)

	nodeSet := func(fams []*telemetry.Family, name string) map[string]bool {
		set := map[string]bool{}
		for _, f := range fams {
			if f.Name != name {
				continue
			}
			for _, s := range f.Samples {
				for _, l := range s.Labels {
					if l.Name == "node" {
						set[l.Value] = true
					}
				}
			}
		}
		return set
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fams := reg.Gather()
			started := nodeSet(fams, "aft_node_txns_started_total")
			committed := nodeSet(fams, "aft_node_txns_committed_total")
			if len(started) != len(committed) {
				t.Errorf("scrape saw half-registered node: started=%v committed=%v", started, committed)
				return
			}
			for n := range started {
				if !committed[n] {
					t.Errorf("scrape saw half-registered node %s: started=%v committed=%v", n, started, committed)
					return
				}
			}
		}
	}()

	// Two kill+promotion cycles under continuous scraping.
	for i := 0; i < 2; i++ {
		runTxn(t, c.Client(), map[string]string{"k": "v"})
		if err := c.Kill(c.Nodes()[0].ID()); err != nil {
			t.Fatal(err)
		}
		deadline := time.After(2 * time.Second)
		for len(c.Nodes()) < 3 {
			select {
			case <-deadline:
				t.Fatal("standby never joined")
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	close(stop)
	wg.Wait()
}
