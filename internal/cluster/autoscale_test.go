package cluster

import (
	"context"
	"testing"
	"time"

	"aft/internal/storage/dynamosim"
)

func TestThresholdPolicyHysteresis(t *testing.T) {
	p := &ThresholdPolicy{High: 10, Low: 2, MinNodes: 1, MaxNodes: 4, Patience: 2}
	over := LoadSample{Nodes: 2, ActiveTransactions: 30} // 15 per node
	if got := p.Decide(over); got != 0 {
		t.Fatalf("first breach acted immediately: %d", got)
	}
	if got := p.Decide(over); got != 1 {
		t.Fatalf("second consecutive breach = %d, want +1", got)
	}
	// Streak resets after an action.
	if got := p.Decide(over); got != 0 {
		t.Fatalf("post-action sample = %d, want 0", got)
	}
	// A calm sample between breaches resets the streak.
	p.Decide(over)
	p.Decide(LoadSample{Nodes: 2, ActiveTransactions: 10})
	if got := p.Decide(over); got != 0 {
		t.Fatalf("streak survived a calm sample: %d", got)
	}
}

func TestThresholdPolicyScaleDownAndBounds(t *testing.T) {
	p := &ThresholdPolicy{High: 10, Low: 2, MinNodes: 2, MaxNodes: 3, Patience: 1}
	idle := LoadSample{Nodes: 3, ActiveTransactions: 0}
	if got := p.Decide(idle); got != -1 {
		t.Fatalf("idle decide = %d, want -1", got)
	}
	atMin := LoadSample{Nodes: 2, ActiveTransactions: 0}
	if got := p.Decide(atMin); got != 0 {
		t.Fatalf("decide at MinNodes = %d, want 0", got)
	}
	atMax := LoadSample{Nodes: 3, ActiveTransactions: 100}
	if got := p.Decide(atMax); got != 0 {
		t.Fatalf("decide at MaxNodes = %d, want 0", got)
	}
	if got := p.Decide(LoadSample{}); got != 0 {
		t.Fatalf("decide with zero nodes = %d", got)
	}
}

func TestAutoscalerScalesUpUnderLoad(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) { cfg.Nodes = 1 })
	scaler := NewAutoscaler(c, &ThresholdPolicy{High: 2, Low: 0, MinNodes: 1, MaxNodes: 3, Patience: 1}, time.Hour)

	// Park transactions to create in-flight load.
	ctx := context.Background()
	node := c.Nodes()[0]
	var parked []string
	for i := 0; i < 6; i++ {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		parked = append(parked, txid)
	}
	scaler.Step(ctx)
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes after loaded step = %d, want 2", len(c.Nodes()))
	}
	ups, downs := scaler.Stats()
	if ups != 1 || downs != 0 {
		t.Fatalf("stats = %d/%d", ups, downs)
	}
	for _, txid := range parked {
		node.AbortTransaction(ctx, txid)
	}
}

func TestAutoscalerScalesDownWhenIdle(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) { cfg.Nodes = 3 })
	scaler := NewAutoscaler(c, &ThresholdPolicy{High: 50, Low: 1, MinNodes: 1, MaxNodes: 4, Patience: 1}, time.Hour)
	ctx := context.Background()
	scaler.Step(ctx)
	scaler.Step(ctx)
	if len(c.Nodes()) != 1 {
		t.Fatalf("nodes after idle steps = %d, want 1", len(c.Nodes()))
	}
	// The cluster still serves transactions after scale-down.
	runTxn(t, c.Client(), map[string]string{"k": "v"})
	_, downs := scaler.Stats()
	if downs != 2 {
		t.Fatalf("downs = %d", downs)
	}
}

func TestAutoscalerLoopStartStop(t *testing.T) {
	c, _ := newTestCluster(t, func(cfg *Config) { cfg.Nodes = 1 })
	scaler := NewAutoscaler(c, &ThresholdPolicy{High: 1e9, Low: -1, MinNodes: 1, MaxNodes: 1}, time.Millisecond)
	scaler.Start()
	scaler.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	scaler.Stop()
	scaler.Stop() // idempotent
	if len(c.Nodes()) != 1 {
		t.Fatalf("nodes changed under a hold-steady policy: %d", len(c.Nodes()))
	}
}

func TestRemoveNodeGracefulFlush(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	c, err := New(Config{
		Nodes:           2,
		Store:           store,
		MulticastPeriod: time.Hour, // no automatic broadcasts
		PruneMulticast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx := context.Background()

	// Commit on a specific node without flushing.
	victim := c.Nodes()[0]
	other := c.Nodes()[1]
	txid, _ := victim.StartTransaction(ctx)
	victim.Put(ctx, txid, "graceful", []byte("v"))
	if _, err := victim.CommitTransaction(ctx, txid); err != nil {
		t.Fatal(err)
	}
	// Graceful removal flushes pending broadcasts (unlike Kill).
	if err := c.RemoveNode(victim.ID()); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveNode(victim.ID()); err == nil {
		t.Fatal("double remove succeeded")
	}
	if other.MetadataSize() != 1 {
		t.Fatalf("surviving node metadata = %d, want 1 (flushed on graceful removal)", other.MetadataSize())
	}
}
