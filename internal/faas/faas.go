// Package faas simulates the Functions-as-a-Service platform AFT sits
// under (AWS Lambda in the paper).
//
// A logical request is modeled the way §2.2 describes: a linear composition
// of one or more functions, each potentially executing on a different
// machine, sharing only the transaction ID. The platform adds per-function
// invocation overhead, injects crashes (a function may die midway through
// its IO sequence), and applies the retry-based fault-tolerance model of
// §3.3.1: a crashed function is retried with the same transaction ID; a
// request whose transaction hits an unrecoverable condition (no valid
// version, node loss) is aborted and redone from scratch.
//
// Substitution note (DESIGN.md §2): real Lambda is unavailable offline; the
// simulator preserves what the evaluation depends on — per-function
// overhead, at-least-once retries, and mid-function partial failures.
package faas

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/latency"
	"aft/internal/lb"
)

// Errors produced by the platform.
var (
	// ErrInjectedCrash simulates a function dying mid-execution. It is
	// retriable: the platform re-invokes the function with the same
	// transaction ID.
	ErrInjectedCrash = errors.New("faas: injected function crash")
	// ErrRetriesExhausted means the request failed after MaxRetries
	// attempts.
	ErrRetriesExhausted = errors.New("faas: retries exhausted")
)

// TxnClient is the transactional surface a request executes against:
// an AFT node, a load balancer over many nodes, or a remote wire client.
type TxnClient interface {
	StartTransaction(ctx context.Context) (string, error)
	Get(ctx context.Context, txid, key string) ([]byte, error)
	Put(ctx context.Context, txid, key string, value []byte) error
	CommitTransaction(ctx context.Context, txid string) (idgen.ID, error)
	AbortTransaction(ctx context.Context, txid string) error
}

// Function is one serverless function in a request chain. It performs its
// IO through the Ctx and returns an error to fail the invocation.
type Function func(fc *Ctx) error

// Ctx is the per-invocation handle a Function uses for storage IO. It
// counts IO operations so the platform can crash the function midway.
type Ctx struct {
	ctx      context.Context
	client   TxnClient
	txid     string
	slot     int
	ioCount  int
	crashAt  int // crash before the Nth IO; 0 = never
	attempts int
}

// TxID returns the logical request's transaction ID.
func (fc *Ctx) TxID() string { return fc.txid }

// Slot returns the function's index within the request chain.
func (fc *Ctx) Slot() int { return fc.slot }

// Attempt returns the invocation attempt number (0 = first try).
func (fc *Ctx) Attempt() int { return fc.attempts }

// Context returns the request context.
func (fc *Ctx) Context() context.Context { return fc.ctx }

func (fc *Ctx) maybeCrash() error {
	fc.ioCount++
	if fc.crashAt > 0 && fc.ioCount >= fc.crashAt {
		return ErrInjectedCrash
	}
	return nil
}

// Get reads key within the request's transaction.
func (fc *Ctx) Get(key string) ([]byte, error) {
	if err := fc.maybeCrash(); err != nil {
		return nil, err
	}
	return fc.client.Get(fc.ctx, fc.txid, key)
}

// Put writes key within the request's transaction.
func (fc *Ctx) Put(key string, value []byte) error {
	if err := fc.maybeCrash(); err != nil {
		return err
	}
	return fc.client.Put(fc.ctx, fc.txid, key, value)
}

// Config parameterizes a Platform.
type Config struct {
	// Client is the transactional backend requests run against. Required.
	Client TxnClient
	// Overhead models per-function invocation latency (latency.OpInvoke);
	// nil adds none.
	Overhead *latency.Model
	// Sleeper injects the overhead; nil never sleeps.
	Sleeper *latency.Sleeper
	// CrashRate is the probability that any single function invocation
	// crashes partway through its IO sequence.
	CrashRate float64
	// MaxFunctionRetries bounds per-function retry attempts (the paper's
	// platforms retry failed functions automatically).
	MaxFunctionRetries int
	// MaxRequestRetries bounds whole-request redo attempts after
	// unrecoverable transaction errors.
	MaxRequestRetries int
	// Seed makes crash injection deterministic.
	Seed int64
}

// Metrics counts platform activity.
type Metrics struct {
	mu              sync.Mutex
	Invocations     int64
	Crashes         int64
	FunctionRetries int64
	RequestRetries  int64
	Commits         int64
	Aborts          int64
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	Invocations, Crashes, FunctionRetries, RequestRetries, Commits, Aborts int64
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		Invocations: m.Invocations, Crashes: m.Crashes,
		FunctionRetries: m.FunctionRetries, RequestRetries: m.RequestRetries,
		Commits: m.Commits, Aborts: m.Aborts,
	}
}

// Platform executes function chains as transactions.
type Platform struct {
	cfg     Config
	mu      sync.Mutex
	rng     *rand.Rand
	metrics Metrics
}

// New returns a Platform over cfg.
func New(cfg Config) (*Platform, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("faas: Config.Client is required")
	}
	if cfg.MaxFunctionRetries == 0 {
		cfg.MaxFunctionRetries = 3
	}
	if cfg.MaxRequestRetries == 0 {
		cfg.MaxRequestRetries = 3
	}
	return &Platform{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Metrics returns the platform counters.
func (p *Platform) Metrics() *Metrics { return &p.metrics }

func (p *Platform) count(f func(*Metrics)) {
	p.metrics.mu.Lock()
	f(&p.metrics)
	p.metrics.mu.Unlock()
}

// crashPoint decides whether (and where) an invocation crashes: a crash
// lands uniformly within the function's first few IOs.
func (p *Platform) crashPoint() int {
	if p.cfg.CrashRate <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() >= p.cfg.CrashRate {
		return 0
	}
	return 1 + p.rng.Intn(4)
}

// Invoke runs fns as one logical request — one AFT transaction spanning the
// whole chain (§2.2) — and returns the commit ID. Failed functions are
// retried with the same transaction ID; unrecoverable transaction errors
// abort and redo the whole request.
func (p *Platform) Invoke(ctx context.Context, fns ...Function) (idgen.ID, error) {
	return p.InvokeBuilder(ctx, func() []Function { return fns })
}

// Builder constructs a fresh function chain for one request attempt;
// callers that accumulate per-request state (e.g. anomaly traces) use it to
// reset that state when the whole request is redone.
type Builder func() []Function

// InvokeBuilder is Invoke with a per-attempt chain builder.
func (p *Platform) InvokeBuilder(ctx context.Context, build Builder) (idgen.ID, error) {
	var lastErr error
	for attempt := 0; attempt <= p.cfg.MaxRequestRetries; attempt++ {
		if attempt > 0 {
			p.count(func(m *Metrics) { m.RequestRetries++ })
		}
		id, err := p.runOnce(ctx, build())
		if err == nil {
			p.count(func(m *Metrics) { m.Commits++ })
			return id, nil
		}
		lastErr = err
		if !retriableRequest(err) {
			return idgen.Null, err
		}
	}
	return idgen.Null, fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// runOnce executes the chain once under a fresh transaction.
func (p *Platform) runOnce(ctx context.Context, fns []Function) (idgen.ID, error) {
	txid, err := p.cfg.Client.StartTransaction(ctx)
	if err != nil {
		return idgen.Null, err
	}
	for slot, fn := range fns {
		if err := p.invokeFunction(ctx, txid, slot, fn); err != nil {
			p.count(func(m *Metrics) { m.Aborts++ })
			_ = p.cfg.Client.AbortTransaction(ctx, txid)
			return idgen.Null, err
		}
	}
	return p.cfg.Client.CommitTransaction(ctx, txid)
}

// invokeFunction runs one function with per-invocation overhead, crash
// injection, and same-txid retries (§3.3.1).
func (p *Platform) invokeFunction(ctx context.Context, txid string, slot int, fn Function) error {
	var lastErr error
	for attempt := 0; attempt <= p.cfg.MaxFunctionRetries; attempt++ {
		p.count(func(m *Metrics) { m.Invocations++ })
		if attempt > 0 {
			p.count(func(m *Metrics) { m.FunctionRetries++ })
		}
		p.cfg.Sleeper.Sleep(p.cfg.Overhead.Sample(latency.OpInvoke, 1))
		fc := &Ctx{
			ctx:      ctx,
			client:   p.cfg.Client,
			txid:     txid,
			slot:     slot,
			crashAt:  p.crashPoint(),
			attempts: attempt,
		}
		err := fn(fc)
		if err == nil && fc.crashAt > 0 && fc.ioCount < fc.crashAt {
			// The function body completed but the instance died before
			// reporting success; the platform sees a crash and retries.
			err = ErrInjectedCrash
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrInjectedCrash) {
			p.count(func(m *Metrics) { m.Crashes++ })
			lastErr = err
			continue // retry with the same transaction ID
		}
		return err
	}
	return fmt.Errorf("%w: %v", ErrRetriesExhausted, lastErr)
}

// retriableRequest reports whether a whole-request redo can help.
func retriableRequest(err error) bool {
	switch {
	case errors.Is(err, core.ErrNoValidVersion):
		// §3.6: equivalent to a snapshot miss; abort and retry.
		return true
	case errors.Is(err, core.ErrVersionVanished):
		// Sharded GC collected a read version mid-transaction; redo
		// observes the superseding state (§5.2.1 analogue).
		return true
	case errors.Is(err, lb.ErrBackendGone), errors.Is(err, lb.ErrUnknownTxn):
		// The transaction's node failed; redo from scratch (§3.3.1).
		return true
	case errors.Is(err, core.ErrTxnNotFound):
		// Node lost the transaction (restart); redo.
		return true
	case errors.Is(err, ErrRetriesExhausted):
		return true
	default:
		return false
	}
}
