package faas

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"aft/internal/core"
	"aft/internal/lb"
	"aft/internal/storage/dynamosim"
)

func newPlatform(t *testing.T, mutate ...func(*Config)) (*Platform, *core.Node) {
	t.Helper()
	store := dynamosim.New(dynamosim.Options{})
	node, err := core.NewNode(core.Config{NodeID: "n1", Store: store})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Client: node}
	for _, m := range mutate {
		m(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, node
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing client accepted")
	}
}

func TestInvokeChainCommitsOnce(t *testing.T) {
	p, node := newPlatform(t)
	ctx := context.Background()
	id, err := p.Invoke(ctx,
		func(fc *Ctx) error { return fc.Put("a", []byte("1")) },
		func(fc *Ctx) error { return fc.Put("b", []byte("2")) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if id.IsNull() {
		t.Fatal("null commit ID")
	}
	m := node.Metrics().Snapshot()
	if m.Committed != 1 || m.Started != 1 {
		t.Fatalf("node metrics = %+v", m)
	}
	pm := p.Metrics().Snapshot()
	if pm.Invocations != 2 || pm.Commits != 1 {
		t.Fatalf("platform metrics = %+v", pm)
	}
}

func TestChainSharesTransaction(t *testing.T) {
	p, _ := newPlatform(t)
	ctx := context.Background()
	var tx1, tx2 string
	_, err := p.Invoke(ctx,
		func(fc *Ctx) error {
			tx1 = fc.TxID()
			if fc.Slot() != 0 {
				t.Errorf("slot = %d", fc.Slot())
			}
			return fc.Put("k", []byte("v"))
		},
		func(fc *Ctx) error {
			tx2 = fc.TxID()
			if fc.Slot() != 1 {
				t.Errorf("slot = %d", fc.Slot())
			}
			// Read-your-writes across functions of the same request.
			v, err := fc.Get("k")
			if err != nil || string(v) != "v" {
				t.Errorf("cross-function RYW = %q, %v", v, err)
			}
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tx1 == "" || tx1 != tx2 {
		t.Fatalf("functions saw different transactions: %q vs %q", tx1, tx2)
	}
}

func TestFunctionErrorAbortsRequest(t *testing.T) {
	p, node := newPlatform(t)
	ctx := context.Background()
	boom := errors.New("boom")
	_, err := p.Invoke(ctx,
		func(fc *Ctx) error { return fc.Put("k", []byte("v")) },
		func(fc *Ctx) error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("Invoke = %v", err)
	}
	m := node.Metrics().Snapshot()
	if m.Aborted != 1 || m.Committed != 0 {
		t.Fatalf("node metrics = %+v", m)
	}
	// Nothing visible.
	txid, _ := node.StartTransaction(ctx)
	if _, err := node.Get(ctx, txid, "k"); !errors.Is(err, core.ErrKeyNotFound) {
		t.Fatalf("aborted write visible: %v", err)
	}
}

func TestCrashInjectionRetriesSameTxn(t *testing.T) {
	p, node := newPlatform(t, func(c *Config) {
		c.CrashRate = 1.0 // first attempt always crashes
		c.MaxFunctionRetries = 10
		c.Seed = 42
	})
	// With CrashRate 1.0 every attempt crashes; expect retries exhausted.
	ctx := context.Background()
	_, err := p.Invoke(ctx, func(fc *Ctx) error {
		return fc.Put("k", []byte("v"))
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Invoke with certain crashes = %v", err)
	}
	if p.Metrics().Snapshot().Crashes == 0 {
		t.Fatal("no crashes recorded")
	}
	_ = node
}

func TestCrashThenSuccessIsExactlyOnce(t *testing.T) {
	// A function that crashes on its first attempt and succeeds on retry
	// must produce exactly one committed transaction with the full write
	// set — the §3.3.1 exactly-once story.
	p, node := newPlatform(t)
	ctx := context.Background()
	attempts := 0
	id, err := p.Invoke(ctx,
		func(fc *Ctx) error {
			if err := fc.Put("a", []byte("1")); err != nil {
				return err
			}
			attempts++
			if attempts == 1 {
				return ErrInjectedCrash // die after the first write
			}
			return fc.Put("b", []byte("2"))
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
	// Both writes visible exactly once, atomically.
	txid, _ := node.StartTransaction(ctx)
	va, err1 := node.Get(ctx, txid, "a")
	vb, err2 := node.Get(ctx, txid, "b")
	if err1 != nil || err2 != nil || string(va) != "1" || string(vb) != "2" {
		t.Fatalf("reads = %q,%v / %q,%v", va, err1, vb, err2)
	}
	if node.Metrics().Snapshot().Committed != 1 {
		t.Fatalf("committed = %d", node.Metrics().Snapshot().Committed)
	}
	if id.IsNull() {
		t.Fatal("null id")
	}
}

func TestNoValidVersionRetriesWholeRequest(t *testing.T) {
	// Force the §3.6 abort case: the request reads l1, a concurrent commit
	// creates {k2,l2}, and the request then reads k. On retry, a fresh
	// transaction sees consistent data and succeeds.
	store := dynamosim.New(dynamosim.Options{})
	node, _ := core.NewNode(core.Config{NodeID: "n1", Store: store})
	ctx := context.Background()

	seed := func(kvs map[string]string) {
		txid, _ := node.StartTransaction(ctx)
		for k, v := range kvs {
			node.Put(ctx, txid, k, []byte(v))
		}
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			t.Fatal(err)
		}
	}
	seed(map[string]string{"l": "l1"})

	p, err := New(Config{Client: node})
	if err != nil {
		t.Fatal(err)
	}
	interfered := false
	id, err := p.Invoke(ctx,
		func(fc *Ctx) error {
			if _, err := fc.Get("l"); err != nil {
				return err
			}
			if !interfered && fc.Attempt() == 0 {
				interfered = true
				seed(map[string]string{"k": "k2", "l": "l2"})
			}
			_, err := fc.Get("k")
			return err
		},
	)
	if err != nil {
		t.Fatalf("Invoke = %v (request retry should recover)", err)
	}
	if id.IsNull() {
		t.Fatal("null id")
	}
	if p.Metrics().Snapshot().RequestRetries != 1 {
		t.Fatalf("request retries = %d, want 1", p.Metrics().Snapshot().RequestRetries)
	}
}

func TestBackendGoneRetriesThroughBalancer(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	n1, _ := core.NewNode(core.Config{NodeID: "n1", Store: store})
	n2, _ := core.NewNode(core.Config{NodeID: "n2", Store: store})
	bal := lb.New(n1, n2)
	p, err := New(Config{Client: bal})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	killed := false
	id, err := p.Invoke(ctx, func(fc *Ctx) error {
		if err := fc.Put("k", []byte("v")); err != nil {
			return err
		}
		if !killed {
			killed = true
			// The node owning this transaction disappears mid-request.
			bal.Remove(n1.ID())
		}
		_, err := fc.Get("k")
		return err
	})
	if err != nil {
		t.Fatalf("Invoke across node failure = %v", err)
	}
	if id.IsNull() {
		t.Fatal("null id")
	}
	if p.Metrics().Snapshot().RequestRetries == 0 {
		t.Fatal("no request retry recorded")
	}
}

func TestManyRequestsThroughPlatform(t *testing.T) {
	p, node := newPlatform(t)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i%7)
		_, err := p.Invoke(ctx,
			func(fc *Ctx) error { return fc.Put(k, []byte{byte(i)}) },
			func(fc *Ctx) error { _, err := fc.Get(k); return err },
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	if node.Metrics().Snapshot().Committed != 50 {
		t.Fatalf("committed = %d", node.Metrics().Snapshot().Committed)
	}
}

func TestCtxAccessors(t *testing.T) {
	p, _ := newPlatform(t)
	ctx := context.Background()
	_, err := p.Invoke(ctx, func(fc *Ctx) error {
		if fc.Context() != ctx {
			t.Error("context not propagated")
		}
		if fc.Attempt() != 0 {
			t.Error("attempt != 0")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
