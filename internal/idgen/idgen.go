// Package idgen defines AFT transaction identifiers and their total order.
//
// A transaction ID is a ⟨timestamp, uuid⟩ pair (§3.1 of the paper). The
// timestamp is taken from the issuing node's local clock at commit time and
// is used only for relative freshness — correctness never depends on clock
// synchronization. Ties between equal timestamps are broken by comparing
// UUIDs lexicographically, so IDs form a total order without coordination.
package idgen

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	mrand "math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ID uniquely identifies a transaction. The zero value is the NULL ID, which
// orders before every real ID and denotes the NULL version of a key (§3.2).
type ID struct {
	// Timestamp is the commit timestamp in nanoseconds. It orders IDs by
	// relative freshness but carries no synchronization guarantee.
	Timestamp int64
	// UUID is a globally unique identifier, used to break timestamp ties
	// and to key idempotent retries.
	UUID string
}

// Null is the NULL transaction ID; it precedes all real IDs.
var Null = ID{}

// IsNull reports whether id is the NULL ID.
func (id ID) IsNull() bool { return id.Timestamp == 0 && id.UUID == "" }

// Less reports whether id orders strictly before other: first by timestamp,
// then by lexicographic UUID comparison.
func (id ID) Less(other ID) bool {
	if id.Timestamp != other.Timestamp {
		return id.Timestamp < other.Timestamp
	}
	return id.UUID < other.UUID
}

// Compare returns -1, 0, or +1 as id orders before, equal to, or after other.
func (id ID) Compare(other ID) int {
	switch {
	case id.Less(other):
		return -1
	case other.Less(id):
		return 1
	default:
		return 0
	}
}

// Equal reports whether the two IDs are identical.
func (id ID) Equal(other ID) bool {
	return id.Timestamp == other.Timestamp && id.UUID == other.UUID
}

// String renders the ID as "<timestamp>_<uuid>", the form used to build
// unique storage keys for key-versions and commit records.
func (id ID) String() string {
	return strconv.FormatInt(id.Timestamp, 10) + "_" + id.UUID
}

// Parse decodes an ID previously rendered by String.
func Parse(s string) (ID, error) {
	i := strings.IndexByte(s, '_')
	if i < 0 {
		return Null, fmt.Errorf("idgen: malformed id %q: missing separator", s)
	}
	ts, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return Null, fmt.Errorf("idgen: malformed id %q: %v", s, err)
	}
	return ID{Timestamp: ts, UUID: s[i+1:]}, nil
}

// Clock supplies commit timestamps. Implementations must be monotone
// non-decreasing per process; cross-node skew is tolerated by the protocols.
type Clock interface {
	// Now returns the current timestamp in nanoseconds.
	Now() int64
}

// WallClock is a Clock backed by the system clock, made strictly monotone
// per process so that a single node never assigns decreasing timestamps.
type WallClock struct {
	last atomic.Int64
}

// Now returns a strictly increasing wall-clock-derived timestamp.
func (w *WallClock) Now() int64 {
	for {
		now := time.Now().UnixNano()
		prev := w.last.Load()
		if now <= prev {
			now = prev + 1
		}
		if w.last.CompareAndSwap(prev, now) {
			return now
		}
	}
}

// VirtualClock is a deterministic Clock for tests and simulations: each call
// advances the time by Step (default 1).
type VirtualClock struct {
	mu   sync.Mutex
	now  int64
	step int64
}

// NewVirtualClock returns a VirtualClock starting at start, advancing by
// step on every Now call. A step of 0 is normalized to 1.
func NewVirtualClock(start, step int64) *VirtualClock {
	if step == 0 {
		step = 1
	}
	return &VirtualClock{now: start, step: step}
}

// Now returns the next virtual timestamp.
func (v *VirtualClock) Now() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now += v.step
	return v.now
}

// Set forces the virtual clock to t; the next Now returns t+step.
func (v *VirtualClock) Set(t int64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = t
}

// Generator mints transaction IDs from a Clock plus random UUIDs.
type Generator struct {
	clock Clock
	// node is mixed into UUIDs so IDs remain unique even if two
	// generators share a deterministic entropy source.
	node string
	mu   sync.Mutex
	seq  uint64
	rnd  func([]byte) error
}

// NewGenerator returns a Generator that stamps IDs with clock and embeds the
// node name in every UUID. If clock is nil a process-wide WallClock is used.
func NewGenerator(clock Clock, node string) *Generator {
	if clock == nil {
		clock = defaultWallClock
	}
	return &Generator{clock: clock, node: node, rnd: func(b []byte) error {
		_, err := rand.Read(b)
		return err
	}}
}

var defaultWallClock = &WallClock{}

// SeedEntropy replaces the generator's random source with a seeded
// deterministic stream (simulation and chaos harnesses, where IDs must
// reproduce bit-for-bit run over run). Uniqueness never depends on the
// stream: UUIDs embed the node name and a sequence number, so two
// generators sharing a seed still mint distinct IDs.
func (g *Generator) SeedEntropy(seed int64) {
	rng := mrand.New(mrand.NewSource(seed))
	var mu sync.Mutex
	g.mu.Lock()
	g.rnd = func(b []byte) error {
		mu.Lock()
		defer mu.Unlock()
		_, err := rng.Read(b)
		return err
	}
	g.mu.Unlock()
}

// NewID mints a fresh transaction ID. The UUID layout is
// "<node>-<seq>-<hex random>"; sequence numbers keep UUIDs unique even when
// the random source misbehaves.
func (g *Generator) NewID() ID {
	g.mu.Lock()
	g.seq++
	seq := g.seq
	rnd := g.rnd
	g.mu.Unlock()

	var buf [8]byte
	if err := rnd(buf[:]); err != nil {
		// Fall back to a time-derived value; uniqueness is preserved by
		// the node name and sequence number.
		binary.BigEndian.PutUint64(buf[:], uint64(time.Now().UnixNano()))
	}
	uuid := g.node + "-" + strconv.FormatUint(seq, 16) + "-" + hex.EncodeToString(buf[:])
	return ID{Timestamp: g.clock.Now(), UUID: uuid}
}

// NewTimestamp returns a fresh commit timestamp without minting a UUID.
// The commit path stamps an existing transaction UUID (§3.1: the ID is
// assigned "at commit time") and should not pay for entropy it would
// discard — NewID's random read is a measurable cost at high commit rates.
func (g *Generator) NewTimestamp() int64 { return g.clock.Now() }

// MaxID returns the later of a and b.
func MaxID(a, b ID) ID {
	if a.Less(b) {
		return b
	}
	return a
}

// MinID returns the earlier of a and b.
func MinID(a, b ID) ID {
	if b.Less(a) {
		return b
	}
	return a
}
