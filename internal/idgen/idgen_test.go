package idgen

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNullOrdersFirst(t *testing.T) {
	real := ID{Timestamp: 1, UUID: "a"}
	if !Null.Less(real) {
		t.Fatalf("Null should order before %v", real)
	}
	if real.Less(Null) {
		t.Fatalf("%v should not order before Null", real)
	}
	if !Null.IsNull() {
		t.Fatal("Null.IsNull() = false")
	}
	if real.IsNull() {
		t.Fatalf("%v.IsNull() = true", real)
	}
}

func TestOrderByTimestampThenUUID(t *testing.T) {
	cases := []struct {
		a, b ID
		less bool
	}{
		{ID{1, "z"}, ID{2, "a"}, true},
		{ID{2, "a"}, ID{1, "z"}, false},
		{ID{1, "a"}, ID{1, "b"}, true},
		{ID{1, "b"}, ID{1, "a"}, false},
		{ID{1, "a"}, ID{1, "a"}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	f := func(t1, t2 int64, u1, u2 string) bool {
		a, b := ID{t1, u1}, ID{t2, u2}
		c := a.Compare(b)
		switch {
		case a.Less(b):
			return c == -1
		case b.Less(a):
			return c == 1
		default:
			return c == 0 && a.Equal(b)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(ts int64, uuid string) bool {
		if ts < 0 {
			ts = -ts
		}
		id := ID{Timestamp: ts, UUID: uuid}
		got, err := Parse(id.String())
		return err == nil && got.Equal(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "noseparator", "abc_x", "_x"} {
		if _, err := Parse(s); err == nil && s != "_x" {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	// "12_" is valid: empty UUID.
	id, err := Parse("12_")
	if err != nil || id.Timestamp != 12 || id.UUID != "" {
		t.Errorf("Parse(\"12_\") = %v, %v", id, err)
	}
}

func TestStringOrderMatchesIDOrderForEqualWidthTimestamps(t *testing.T) {
	// Storage-key ordering relies on String() being order-preserving for
	// same-width timestamps (our clocks produce monotone values of stable
	// width within a run).
	ids := []ID{{100, "b"}, {100, "a"}, {101, "a"}, {999, "zz"}, {500, "m"}}
	sorted := append([]ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	strs := make([]string, len(ids))
	for i, id := range ids {
		strs[i] = id.String()
	}
	sort.Strings(strs)
	for i := range sorted {
		if sorted[i].String() != strs[i] {
			t.Fatalf("order mismatch at %d: %s vs %s", i, sorted[i].String(), strs[i])
		}
	}
}

func TestWallClockMonotone(t *testing.T) {
	var w WallClock
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := int64(0)
			for j := 0; j < 1000; j++ {
				now := w.Now()
				if now <= prev {
					t.Errorf("clock went backwards: %d after %d", now, prev)
					return
				}
				prev = now
				mu.Lock()
				if seen[now] {
					t.Errorf("duplicate timestamp %d", now)
					mu.Unlock()
					return
				}
				seen[now] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestVirtualClock(t *testing.T) {
	v := NewVirtualClock(10, 5)
	if got := v.Now(); got != 15 {
		t.Fatalf("first Now = %d, want 15", got)
	}
	if got := v.Now(); got != 20 {
		t.Fatalf("second Now = %d, want 20", got)
	}
	v.Set(100)
	if got := v.Now(); got != 105 {
		t.Fatalf("after Set(100), Now = %d, want 105", got)
	}
	z := NewVirtualClock(0, 0) // step normalized to 1
	if got := z.Now(); got != 1 {
		t.Fatalf("zero-step clock Now = %d, want 1", got)
	}
}

func TestGeneratorUniqueness(t *testing.T) {
	g := NewGenerator(NewVirtualClock(0, 1), "n1")
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		id := g.NewID()
		if seen[id.UUID] {
			t.Fatalf("duplicate UUID %q", id.UUID)
		}
		seen[id.UUID] = true
	}
}

func TestGeneratorDistinctNodesDistinctUUIDs(t *testing.T) {
	// Even with a broken (all-zero) entropy source, node name + sequence
	// keep UUIDs unique across generators.
	mk := func(node string) *Generator {
		g := NewGenerator(NewVirtualClock(0, 1), node)
		g.rnd = func(b []byte) error {
			for i := range b {
				b[i] = 0
			}
			return nil
		}
		return g
	}
	g1, g2 := mk("a"), mk("b")
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		for _, id := range []ID{g1.NewID(), g2.NewID()} {
			if seen[id.UUID] {
				t.Fatalf("duplicate UUID %q", id.UUID)
			}
			seen[id.UUID] = true
		}
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator(nil, "node")
	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				id := g.NewID()
				mu.Lock()
				if seen[id.String()] {
					t.Errorf("duplicate ID %s", id)
				}
				seen[id.String()] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestMaxMinID(t *testing.T) {
	a, b := ID{1, "a"}, ID{2, "b"}
	if MaxID(a, b) != b || MaxID(b, a) != b {
		t.Error("MaxID wrong")
	}
	if MinID(a, b) != a || MinID(b, a) != a {
		t.Error("MinID wrong")
	}
	if MaxID(a, a) != a || MinID(a, a) != a {
		t.Error("Max/Min of equal IDs wrong")
	}
}

func TestTotalOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ids := make([]ID, 200)
	for i := range ids {
		ids[i] = ID{Timestamp: int64(rng.Intn(50)), UUID: string(rune('a' + rng.Intn(26)))}
	}
	// Antisymmetry and transitivity via sort consistency.
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for i := 1; i < len(ids); i++ {
		if ids[i].Less(ids[i-1]) {
			t.Fatalf("sort inconsistency at %d", i)
		}
	}
}
