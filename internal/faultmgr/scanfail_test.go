package faultmgr

import (
	"context"
	"errors"
	"testing"

	"aft/internal/storage/dynamosim"
)

// failingBatchGetStore fails its first N BatchGet calls — a transient
// storage fault in the middle of a fault-manager recovery scan.
type failingBatchGetStore struct {
	*dynamosim.Store
	failures int
}

var errScanBoom = errors.New("scanfail: transient BatchGet failure")

func (s *failingBatchGetStore) BatchGet(ctx context.Context, keys []string) (map[string][]byte, error) {
	if s.failures > 0 {
		s.failures--
		return nil, errScanBoom
	}
	return s.Store.BatchGet(ctx, keys)
}

// TestScanStorageFailureDoesNotSwallowRecoveredCommits locks in the
// recovery-scan failure contract the chaos harness flushed out: a scan
// that dies on a transient storage error mid-recovery must leave the
// unfetched records "unknown", so the NEXT scan still re-announces them
// to the nodes. (The buggy shape — installing records into the manager's
// index as they are fetched, then erroring out before the re-announce —
// made those commits permanently invisible: known to the manager, hence
// never re-announced, yet delivered to no node; the checker reported them
// as lost writes.)
func TestScanStorageFailureDoesNotSwallowRecoveredCommits(t *testing.T) {
	ctx := context.Background()
	inner := dynamosim.New(dynamosim.Options{})
	store := &failingBatchGetStore{Store: inner, failures: 1}

	// A node commits two transactions and dies before broadcasting: the
	// records are durable but the manager never ingested them.
	dead := newNode(t, inner, "dead")
	commit(t, dead, map[string]string{"a": "1"})
	commit(t, dead, map[string]string{"b": "2"})

	survivor := newNode(t, inner, "survivor")
	m := New(store, StaticMembership{survivor})

	// First scan hits the transient fault and must surface it.
	if err := m.ScanStorage(ctx); !errors.Is(err, errScanBoom) {
		t.Fatalf("first scan = %v, want the injected failure", err)
	}
	// The retry must still recover AND re-announce both records.
	if err := m.ScanStorage(ctx); err != nil {
		t.Fatalf("retry scan: %v", err)
	}
	if got := m.Metrics().Snapshot().Recovered; got != 2 {
		t.Fatalf("Recovered = %d, want 2", got)
	}
	if survivor.MetadataSize() != 2 {
		t.Fatalf("survivor caches %d records, want 2 (recovered commits swallowed)", survivor.MetadataSize())
	}
	// And the recovered data is readable through the survivor.
	txid, err := survivor.StartTransaction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		v, err := survivor.Get(ctx, txid, k)
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}
