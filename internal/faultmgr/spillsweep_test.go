package faultmgr

import (
	"context"
	"testing"

	"aft/internal/core"
	"aft/internal/records"
	"aft/internal/storage/dynamosim"
)

// spillNode builds a node with an aggressive spill threshold.
func spillNode(t *testing.T, store *dynamosim.Store, id string) *core.Node {
	t.Helper()
	n, err := core.NewNode(core.Config{NodeID: id, Store: store, SpillThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSweepSpillsRemovesOrphans(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n := spillNode(t, store, "n1")
	m := New(store, StaticMembership{n})

	// An orphan: a transaction spills, then its node "crashes" (we simply
	// never commit or abort).
	orphan, _ := n.StartTransaction(ctx)
	if err := n.Put(ctx, orphan, "big", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	spills, _ := store.List(ctx, records.SpillPrefix)
	if len(spills) != 1 {
		t.Fatalf("setup: %d spill keys", len(spills))
	}

	// Grace period: a cutoff in the past protects the in-flight spill.
	deleted, err := m.SweepSpills(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Fatal("sweep deleted a spill within the grace period")
	}
	// A cutoff beyond the transaction's start timestamp reclaims it.
	deleted, err = m.SweepSpills(ctx, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Fatalf("deleted = %d, want 1", deleted)
	}
	spills, _ = store.List(ctx, records.SpillPrefix)
	if len(spills) != 0 {
		t.Fatalf("spill keys left: %v", spills)
	}
}

func TestSweepSpillsKeepsCommittedData(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n := spillNode(t, store, "n1")
	m := New(store, StaticMembership{n})

	// A committed transaction whose payload lives in the spill area.
	txid, _ := n.StartTransaction(ctx)
	if err := n.Put(ctx, txid, "big", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CommitTransaction(ctx, txid); err != nil {
		t.Fatal(err)
	}
	m.Ingest("n1", n.Drain())

	deleted, err := m.SweepSpills(ctx, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Fatal("sweep deleted committed spill data")
	}
	// The committed value is still readable.
	reader, _ := n.StartTransaction(ctx)
	v, err := n.Get(ctx, reader, "big")
	if err != nil || len(v) != 64 {
		t.Fatalf("read after sweep = %d bytes, %v", len(v), err)
	}
}

func TestSweepSpillsChecksStorageForUnknownCommits(t *testing.T) {
	// Even if the manager's in-memory index is empty (fresh restart), a
	// spill whose transaction committed must survive: the sweep consults
	// the commit set in storage.
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n := spillNode(t, store, "n1")
	txid, _ := n.StartTransaction(ctx)
	if err := n.Put(ctx, txid, "big", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CommitTransaction(ctx, txid); err != nil {
		t.Fatal(err)
	}
	fresh := New(store, StaticMembership{n}) // knows nothing
	deleted, err := fresh.SweepSpills(ctx, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 0 {
		t.Fatal("restarted manager deleted a committed spill")
	}
}
