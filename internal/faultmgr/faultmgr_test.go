package faultmgr

import (
	"context"
	"errors"
	"testing"

	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/multicast"
	"aft/internal/records"
	"aft/internal/storage"
	"aft/internal/storage/dynamosim"
)

func newNode(t *testing.T, store *dynamosim.Store, id string) *core.Node {
	t.Helper()
	n, err := core.NewNode(core.Config{NodeID: id, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func commit(t *testing.T, n *core.Node, kvs map[string]string) idgen.ID {
	t.Helper()
	ctx := context.Background()
	txid, err := n.StartTransaction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		if err := n.Put(ctx, txid, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	id, err := n.CommitTransaction(ctx, txid)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIngestBuildsIndex(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	n1 := newNode(t, store, "n1")
	m := New(store, StaticMembership{n1})
	commit(t, n1, map[string]string{"k": "v"})
	m.Ingest("n1", n1.Drain())
	if m.KnownCommits() != 1 {
		t.Fatalf("known = %d", m.KnownCommits())
	}
	if m.Metrics().Snapshot().Ingested != 1 {
		t.Fatal("ingest not counted")
	}
	// Duplicate ingest is a no-op.
	m.Ingest("n1", nil)
}

// TestScanRecoversUnbroadcastCommits reproduces the §4.2 liveness scenario:
// a node commits (record durable in storage), acknowledges, and dies before
// broadcasting. The fault manager's scan finds the record and announces it
// to the surviving nodes.
func TestScanRecoversUnbroadcastCommits(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	dead := newNode(t, store, "dead")
	commit(t, dead, map[string]string{"k": "orphan"})
	// "dead" never drains/broadcasts: simulate the crash by dropping it.

	survivor := newNode(t, store, "survivor")
	m := New(store, StaticMembership{survivor})
	if err := m.ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().Snapshot().Recovered != 1 {
		t.Fatalf("recovered = %d, want 1", m.Metrics().Snapshot().Recovered)
	}
	// The survivor can now read the orphaned commit.
	txid, _ := survivor.StartTransaction(ctx)
	v, err := survivor.Get(ctx, txid, "k")
	if err != nil || string(v) != "orphan" {
		t.Fatalf("survivor read = %q, %v", v, err)
	}
	// A second scan finds nothing new.
	if err := m.ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().Snapshot().Recovered != 1 {
		t.Fatal("rescan double-counted")
	}
}

func TestScanIsRestartSafe(t *testing.T) {
	// §4.2: the fault manager is stateless; a fresh instance rebuilds its
	// view by scanning.
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n1 := newNode(t, store, "n1")
	commit(t, n1, map[string]string{"a": "1"})
	commit(t, n1, map[string]string{"b": "1"})

	m1 := New(store, StaticMembership{n1})
	if err := m1.ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := New(store, StaticMembership{n1}) // "restart"
	if err := m2.ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	if m2.KnownCommits() != 2 {
		t.Fatalf("restarted manager knows %d commits, want 2", m2.KnownCommits())
	}
}

func TestCollectOnceDeletesOnlyWhenAllNodesAgree(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n1, n2 := newNode(t, store, "n1"), newNode(t, store, "n2")

	bus := multicast.NewBus()
	bus.Register(n1)
	bus.Register(n2)
	m := New(store, StaticMembership{n1, n2})
	bus.Tap(m.Ingest)

	id1 := commit(t, n1, map[string]string{"k": "v1"})
	bus.FlushPeer(n1, false)
	commit(t, n1, map[string]string{"k": "v2"})
	bus.FlushPeer(n1, false)

	// Only n1 has GC'd the superseded transaction so far.
	if removed := n1.SweepLocalMetadata(0); len(removed) != 1 {
		t.Fatalf("n1 swept %d", len(removed))
	}
	removed, err := m.CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatal("global GC deleted before all nodes agreed")
	}
	if _, err := store.Get(ctx, records.DataKey("k", id1)); err != nil {
		t.Fatalf("data deleted prematurely: %v", err)
	}

	// After n2 also sweeps, the global GC may delete.
	if removed := n2.SweepLocalMetadata(0); len(removed) != 1 {
		t.Fatalf("n2 swept %d", len(removed))
	}
	removed, err = m.CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || !removed[0].Equal(id1) {
		t.Fatalf("global GC removed %v, want [%v]", removed, id1)
	}
	// Data and commit record are gone from storage.
	if _, err := store.Get(ctx, records.DataKey("k", id1)); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("old version still in storage: %v", err)
	}
	if _, err := store.Get(ctx, records.CommitKey(id1)); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("old commit record still in storage: %v", err)
	}
	// Node bookkeeping cleared.
	if n1.LocallyDeleted([]idgen.ID{id1})[id1] {
		t.Fatal("ForgetDeleted not propagated")
	}
	m2 := m.Metrics().Snapshot()
	if m2.TxnsDeleted != 1 || m2.VersionsDeleted != 1 {
		t.Fatalf("metrics = %+v", m2)
	}
}

func TestCollectOnceOldestFirstAndLimited(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n1 := newNode(t, store, "n1")
	m := New(store, StaticMembership{n1})
	for i := 0; i < 4; i++ {
		commit(t, n1, map[string]string{"k": string(rune('0' + i))})
	}
	m.Ingest("n1", n1.Drain())
	n1.SweepLocalMetadata(0) // removes the 3 superseded
	removed, err := m.CollectOnce(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("limited collect removed %d", len(removed))
	}
	if !removed[0].Less(removed[1]) {
		t.Fatal("not oldest-first")
	}
	removed2, err := m.CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed2) != 1 {
		t.Fatalf("second collect removed %d, want 1", len(removed2))
	}
}

func TestCollectNeverTouchesLiveLatestVersion(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n1 := newNode(t, store, "n1")
	m := New(store, StaticMembership{n1})
	id := commit(t, n1, map[string]string{"k": "only"})
	m.Ingest("n1", n1.Drain())
	n1.SweepLocalMetadata(0)
	removed, err := m.CollectOnce(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatal("collected the only (un-superseded) version")
	}
	if _, err := store.Get(ctx, records.DataKey("k", id)); err != nil {
		t.Fatalf("live version deleted: %v", err)
	}
}

func TestEndToEndReadAfterGlobalGC(t *testing.T) {
	// After global GC removes old versions, fresh transactions still read
	// the latest value correctly.
	store := dynamosim.New(dynamosim.Options{})
	ctx := context.Background()
	n1 := newNode(t, store, "n1")
	m := New(store, StaticMembership{n1})
	for i := 0; i < 10; i++ {
		commit(t, n1, map[string]string{"k": "v" + string(rune('0'+i))})
	}
	m.Ingest("n1", n1.Drain())
	n1.SweepLocalMetadata(0)
	if _, err := m.CollectOnce(ctx, 0); err != nil {
		t.Fatal(err)
	}
	txid, _ := n1.StartTransaction(ctx)
	v, err := n1.Get(ctx, txid, "k")
	if err != nil || string(v) != "v9" {
		t.Fatalf("read after GC = %q, %v", v, err)
	}
	// Storage holds exactly one version of k plus one commit record.
	versions, _ := store.List(ctx, records.DataKeyPrefix("k"))
	if len(versions) != 1 {
		t.Fatalf("versions left = %v", versions)
	}
	commits, _ := store.List(ctx, records.CommitPrefix)
	if len(commits) != 1 {
		t.Fatalf("commit records left = %d", len(commits))
	}
}

// TestScopedCollectQueriesOwnersOnly: with a Scope installed, the global
// GC collects on the owner's vote alone — non-owners are not consulted —
// and keeps records whose owner is not live.
func TestScopedCollectQueriesOwnersOnly(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	owner := newNode(t, store, "owner")
	other := newNode(t, store, "other")
	m := New(store, StaticMembership{owner, other})
	m.SetScope(func(rec *records.CommitRecord) []string {
		if rec.Cowritten("k") {
			return []string{"owner"}
		}
		return []string{"ghost"} // an owner that is not live
	})

	// Two overwrites of "k" on the owner: the older becomes superseded.
	commit(t, owner, map[string]string{"k": "v1"})
	commit(t, owner, map[string]string{"k": "v2"})
	m.Ingest("owner", owner.Drain())
	// One superseded record owned by a dead node.
	commit(t, other, map[string]string{"dead": "v1"})
	commit(t, other, map[string]string{"dead": "v2"})
	m.Ingest("other", other.Drain())

	// Only the owner sweeps; "other" keeps everything it cached.
	owner.SweepLocalMetadata(0)
	removed, err := m.CollectOnce(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("collected %d transactions, want 1 (the owner-voted one)", len(removed))
	}
	// The dead-owner record must survive (conservative).
	keys, err := store.List(context.Background(), records.DataPrefix+"dead/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("dead-owner key has %d versions, want 2 (uncollected)", len(keys))
	}
}

// TestScopedScanAnnouncesToOwners: storage-scan recovery routes records to
// their scope targets only.
func TestScopedScanAnnouncesToOwners(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	writer := newNode(t, store, "writer")
	commit(t, writer, map[string]string{"k": "v"})
	// The writer "crashes" before broadcasting: drop its queue.
	writer.Drain()

	ownerN := newNode(t, store, "owner")
	otherN := newNode(t, store, "other")
	m := New(store, StaticMembership{ownerN, otherN})
	m.SetScope(func(rec *records.CommitRecord) []string { return []string{"owner"} })
	if err := m.ScanStorage(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ownerN.MetadataSize(); got != 1 {
		t.Fatalf("owner learned %d records, want 1", got)
	}
	if got := otherN.MetadataSize(); got != 0 {
		t.Fatalf("non-owner learned %d records, want 0", got)
	}
}

// TestScopedCollectOwnerNeverCached: an owner that gained its shard after
// a record's multicast round (so it never cached the record) must not
// block collection forever — its vote is "not cached", not "not swept".
func TestScopedCollectOwnerNeverCached(t *testing.T) {
	store := dynamosim.New(dynamosim.Options{})
	writer := newNode(t, store, "writer")
	commit(t, writer, map[string]string{"k": "v1"})
	commit(t, writer, map[string]string{"k": "v2"})

	// The current owner joined after the multicast rounds: it never saw
	// either record.
	newOwner := newNode(t, store, "new-owner")
	m := New(store, StaticMembership{newOwner})
	m.Ingest("writer", writer.Drain())
	m.SetScope(func(rec *records.CommitRecord) []string { return []string{"new-owner"} })

	removed, err := m.CollectOnce(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("collected %d, want 1 (never-cached owner must not stall the GC)", len(removed))
	}
	// The superseding version survives.
	if _, err := store.Get(context.Background(), records.DataKey("k", removed[0])); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("collected version still in storage: %v", err)
	}
}
