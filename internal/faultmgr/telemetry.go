package faultmgr

import (
	"context"
	"strconv"
	"time"

	"aft/internal/idgen"
	"aft/internal/telemetry"
)

// RegisterTelemetry publishes the fault manager's counters — the §4.2
// recovery and global-GC activity — under aft_faultmgr_*, plus the size
// of its global commit view.
func (m *Manager) RegisterTelemetry(reg *telemetry.Registry) {
	if m == nil {
		return
	}
	mm := &m.metrics
	reg.Register(func(e *telemetry.Emitter) {
		s := mm.Snapshot()
		e.Counter("aft_faultmgr_ingested_total",
			"Commit records received via unpruned broadcast taps.", uint64(s.Ingested))
		e.Counter("aft_faultmgr_recovered_total",
			"Commit records found only by scanning storage.", uint64(s.Recovered))
		e.Counter("aft_faultmgr_txns_deleted_total",
			"Transactions whose data the global GC removed.", uint64(s.TxnsDeleted))
		e.Counter("aft_faultmgr_versions_deleted_total",
			"Key versions removed from storage by the global GC.", uint64(s.VersionsDeleted))
		e.Gauge("aft_faultmgr_known_commits",
			"Committed transactions in the manager's global view.",
			float64(m.KnownCommits()))
	})
}

// SetTracer attaches a tracer: ScanStorage and CollectOnce sweeps become
// system traces retained under the self-sample/slow policy. Nil (the
// default) keeps sweeps untraced.
func (m *Manager) SetTracer(tr *telemetry.Tracer) {
	m.mu.Lock()
	m.tracer = tr
	m.mu.Unlock()
}

func (m *Manager) traceSweep(name string) *telemetry.Trace {
	m.mu.Lock()
	tr := m.tracer
	m.mu.Unlock()
	return tr.BeginSystem(name)
}

// ScanStorageTraced runs ScanStorage under a faultmgr.sweep span.
func (m *Manager) ScanStorageTraced(ctx context.Context) error {
	t := m.traceSweep("faultmgr.scan")
	start := time.Now()
	err := m.ScanStorage(ctx)
	status := "ok"
	if err != nil {
		status = "error"
	}
	t.AddSpan("faultmgr.sweep", start, time.Since(start),
		map[string]string{"kind": "scan"})
	t.Finish(status)
	return err
}

// CollectOnceTraced runs CollectOnce under a faultmgr.sweep span
// annotated with how many transactions the pass deleted.
func (m *Manager) CollectOnceTraced(ctx context.Context, maxDelete int) ([]idgen.ID, error) {
	t := m.traceSweep("faultmgr.gc")
	start := time.Now()
	deleted, err := m.CollectOnce(ctx, maxDelete)
	status := "ok"
	if err != nil {
		status = "error"
	}
	t.AddSpan("faultmgr.sweep", start, time.Since(start),
		map[string]string{"kind": "gc", "deleted": strconv.Itoa(len(deleted))})
	t.Finish(status)
	return deleted, err
}
