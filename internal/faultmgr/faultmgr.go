// Package faultmgr implements AFT's fault manager (§4.2) and the global
// data garbage collector it doubles as (§5.2).
//
// The fault manager lives off the request critical path. It receives every
// node's committed-transaction stream without pruning, periodically scans
// the Transaction Commit Set in storage for commit records it never saw —
// records persisted by a node that failed before broadcasting them — and
// re-announces those to every node, guaranteeing that an acknowledged
// commit is eventually visible everywhere (liveness).
//
// As the global GC, it runs Algorithm 2 over its own commit index to find
// superseded transactions, asks all nodes whether they have locally
// deleted each one (§5.1), and — only when *every* node has — deletes the
// transaction's key versions and commit record from storage. It is
// stateless with respect to storage: if it fails, it simply rescans the
// Commit Set (§4.2).
package faultmgr

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aft/internal/idgen"
	"aft/internal/records"
	"aft/internal/storage"
	"aft/internal/telemetry"
)

// Node is the surface the fault manager needs from an AFT node.
// *core.Node implements it.
type Node interface {
	ID() string
	MergeRemoteCommits(recs []*records.CommitRecord)
	LocallyDeleted(ids []idgen.ID) map[idgen.ID]bool
	// Caches reports current Commit Set Cache membership; the sharded GC
	// votes on it (an owner that never cached a record must not block
	// collection).
	Caches(ids []idgen.ID) map[idgen.ID]bool
	ForgetDeleted(ids []idgen.ID)
}

// Membership supplies the current node set. Knowing all nodes is a
// classical membership problem requiring coordination; the paper delegates
// it to Kubernetes (§5.2 footnote) and we delegate it to the cluster layer.
type Membership interface {
	Nodes() []Node
}

// StaticMembership is a fixed node set, for tests and single-shot tools.
type StaticMembership []Node

// Nodes implements Membership.
func (s StaticMembership) Nodes() []Node { return s }

// Metrics counts fault-manager activity. Counters are atomic: the ingest
// tap runs on every node's multicast round and must not share a lock with
// the slower GC paths.
type Metrics struct {
	Ingested        atomic.Int64 // records received via (unpruned) broadcast taps
	Recovered       atomic.Int64 // records found only by scanning storage
	TxnsDeleted     atomic.Int64 // transactions whose data the global GC removed
	VersionsDeleted atomic.Int64 // key versions removed from storage
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	Ingested, Recovered, TxnsDeleted, VersionsDeleted int64
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{Ingested: m.Ingested.Load(), Recovered: m.Recovered.Load(),
		TxnsDeleted: m.TxnsDeleted.Load(), VersionsDeleted: m.VersionsDeleted.Load()}
}

// Scope maps a commit record to the node IDs responsible for its
// metadata — in sharded deployments, the owners of the shards its write
// set touches. The manager uses it to target storage-scan re-announcements
// and to pick the voter set for global-GC unanimity. A nil Scope means
// every node is responsible for everything (the paper's symmetric mode).
type Scope func(rec *records.CommitRecord) []string

// Manager is the fault manager / global GC.
type Manager struct {
	store      storage.Store
	membership Membership

	mu sync.Mutex
	// commits is the manager's own view of all committed transactions,
	// fed by unpruned broadcast streams and storage scans. In sharded
	// mode this view stays global: the bus tap is never scoped (§4.2).
	commits map[idgen.ID]*records.CommitRecord
	// latest maps each key to the newest committed version the manager
	// knows, for Algorithm 2.
	latest map[string]idgen.ID
	// scope, when non-nil, shards the manager's node-facing work.
	scope Scope
	// tracer, when non-nil, records sweeps as system traces (telemetry.go).
	tracer *telemetry.Tracer

	metrics Metrics
}

// New returns a Manager over the shared store with the given membership.
func New(store storage.Store, membership Membership) *Manager {
	return &Manager{
		store:      store,
		membership: membership,
		commits:    make(map[idgen.ID]*records.CommitRecord),
		latest:     make(map[string]idgen.ID),
	}
}

// Metrics returns the manager's counters.
func (m *Manager) Metrics() *Metrics { return &m.metrics }

// SetScope installs the sharding scope (see Scope). The cluster layer sets
// it together with per-node ownership filters; the two must agree, or the
// GC would wait forever on votes from nodes that never cache the records.
func (m *Manager) SetScope(s Scope) {
	m.mu.Lock()
	m.scope = s
	m.mu.Unlock()
}

// Ingest consumes one node's unpruned commit stream; register it as a
// multicast bus tap.
func (m *Manager) Ingest(from string, recs []*records.CommitRecord) {
	ingestStart := time.Now()
	var traced []*records.CommitRecord
	m.mu.Lock()
	for _, rec := range recs {
		if m.installLocked(rec) {
			m.metrics.Ingested.Add(1)
			if rec.TraceID != "" {
				traced = append(traced, rec)
			}
		}
	}
	m.mu.Unlock()
	// Sampled records attribute their arrival at the fault manager back
	// to the originating trace — the cross-process hop that makes a
	// commit's announcement visible on the stitched /traces view.
	for _, rec := range traced {
		m.tracer.ForeignSpan(rec.TraceID, "faultmgr.ingest",
			ingestStart, time.Since(ingestStart),
			map[string]string{"tx": rec.UUID, "from": from})
	}
}

// installLocked records a commit in the manager's index. Callers hold m.mu.
func (m *Manager) installLocked(rec *records.CommitRecord) bool {
	id := rec.ID()
	if _, ok := m.commits[id]; ok {
		return false
	}
	m.commits[id] = rec
	for _, k := range rec.WriteSet {
		if cur, ok := m.latest[k]; !ok || cur.Less(id) {
			m.latest[k] = id
		}
	}
	return true
}

// KnownCommits returns the number of transactions in the manager's index.
func (m *Manager) KnownCommits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.commits)
}

// ScanStorage reads the Transaction Commit Set and re-announces to every
// node any commit record the manager had not already received via
// broadcast (§4.2): this recovers commits acknowledged by a node that
// failed before its multicast round.
//
// Failure safety: nothing is installed into the manager's index until
// every unknown record has been fetched. A scan that installed records as
// it went and then died on a storage error would swallow those commits
// forever — known to the manager (so no later scan re-announces them) yet
// delivered to no node; the chaos harness reproduces exactly that as a
// lost write. Fetching through one BatchGet round-trip group also shrinks
// the scan's fallible-call count from O(records) to O(1).
func (m *Manager) ScanStorage(ctx context.Context) error {
	scanStart := time.Now()
	keys, err := m.store.List(ctx, records.CommitPrefix)
	if err != nil {
		return err
	}
	want := make([]string, 0, len(keys))
	for _, sk := range keys {
		id, err := records.ParseCommitKey(sk)
		if err != nil {
			continue
		}
		m.mu.Lock()
		_, known := m.commits[id]
		m.mu.Unlock()
		if !known {
			want = append(want, sk)
		}
	}
	if len(want) == 0 {
		return nil
	}
	payloads, err := m.store.BatchGet(ctx, want)
	if err != nil {
		return err // nothing installed: the next scan recovers everything
	}
	var missed []*records.CommitRecord
	m.mu.Lock()
	for _, sk := range want {
		payload, ok := payloads[sk]
		if !ok {
			continue // concurrently deleted
		}
		rec, err := records.UnmarshalCommitRecord(payload)
		if err != nil {
			continue // unreadable record: skip, never delete data we can't attribute
		}
		if m.installLocked(rec) {
			missed = append(missed, rec)
		}
	}
	scope := m.scope
	m.mu.Unlock()
	if len(missed) == 0 {
		return nil
	}
	m.metrics.Recovered.Add(int64(len(missed)))
	// A recovered record carrying a sampled trace ID marks the recovery
	// on that trace: the fault manager found a commit its node never
	// announced (it died first) and is about to re-announce it.
	for _, rec := range missed {
		if rec.TraceID != "" {
			m.tracer.ForeignSpan(rec.TraceID, "faultmgr.recover",
				scanStart, time.Since(scanStart),
				map[string]string{"tx": rec.UUID, "node": rec.Node})
		}
	}
	nodes := m.membership.Nodes()
	if scope == nil {
		for _, n := range nodes {
			n.MergeRemoteCommits(missed)
		}
		return nil
	}
	// Sharded mode: re-announce each recovered record only to the owners
	// of the shards it touches; everyone else recovers it from storage on
	// demand. Liveness (§4.2) holds because owners — the nodes that cache
	// and vote on the record — always learn of it.
	perNode := make(map[string][]*records.CommitRecord)
	for _, rec := range missed {
		for _, id := range scope(rec) {
			perNode[id] = append(perNode[id], rec)
		}
	}
	for _, n := range nodes {
		if batch := perNode[n.ID()]; len(batch) > 0 {
			n.MergeRemoteCommits(batch)
		}
	}
	return nil
}

// Reannounce pushes the manager's cached commit records to live nodes
// selected by route (record → node IDs). The cluster calls it after a
// rebalance: a node gaining a shard never received the shard's earlier
// multicast rounds (they went to the previous owner), and without a push
// it would serve stale-but-atomic reads from whatever partial view it
// has. One pass over the manager's tap-fed global view buckets records
// per target, so the cost of a rebalance is a single scan regardless of
// how many nodes gained shards. Returns the number of records pushed,
// counting multiplicity.
func (m *Manager) Reannounce(route func(rec *records.CommitRecord) []string) int {
	m.mu.Lock()
	batches := make(map[string][]*records.CommitRecord)
	for _, rec := range m.commits {
		for _, id := range route(rec) {
			batches[id] = append(batches[id], rec)
		}
	}
	m.mu.Unlock()
	if len(batches) == 0 {
		return 0
	}
	pushed := 0
	for _, n := range m.membership.Nodes() {
		if batch := batches[n.ID()]; len(batch) > 0 {
			n.MergeRemoteCommits(batch)
			pushed += len(batch)
		}
	}
	return pushed
}

// AnnounceTo pushes every commit record the manager knows to a single
// node and returns the largest commit storage key among them ("" when the
// manager knows nothing). The cluster layer uses it for incremental
// promotion: the fresh node receives the manager's tap-fed in-memory view
// for free, then needs only BootstrapSince(returned key) to fetch from
// storage the records the manager itself has not yet seen — commits from
// a node that died before its multicast round, exactly the set the next
// ScanStorage would recover.
func (m *Manager) AnnounceTo(n Node) string {
	m.mu.Lock()
	batch := make([]*records.CommitRecord, 0, len(m.commits))
	max := ""
	for id, rec := range m.commits {
		batch = append(batch, rec)
		if sk := records.CommitKey(id); sk > max {
			max = sk
		}
	}
	m.mu.Unlock()
	announceStart := time.Now()
	if len(batch) > 0 {
		n.MergeRemoteCommits(batch)
	}
	for _, rec := range batch {
		if rec.TraceID != "" {
			m.tracer.ForeignSpan(rec.TraceID, "faultmgr.announce",
				announceStart, time.Since(announceStart),
				map[string]string{"tx": rec.UUID, "to": n.ID()})
		}
	}
	return max
}

// supersededLocked is Algorithm 2 over the manager's index.
func (m *Manager) supersededLocked(rec *records.CommitRecord) bool {
	if len(rec.WriteSet) == 0 {
		return true
	}
	id := rec.ID()
	for _, k := range rec.WriteSet {
		latest, ok := m.latest[k]
		if !ok || !id.Less(latest) {
			return false
		}
	}
	return true
}

// CollectOnce runs one global GC round (§5.2): find superseded
// transactions, confirm every node has locally deleted them, then delete
// their key versions, spill data, and commit records from storage, oldest
// first. maxDelete bounds one round (0 = unlimited). It returns the IDs
// whose data was deleted.
func (m *Manager) CollectOnce(ctx context.Context, maxDelete int) ([]idgen.ID, error) {
	// Phase 1: candidate list, oldest first (§5.2.1 mitigation).
	m.mu.Lock()
	candidates := make([]*records.CommitRecord, 0)
	for _, rec := range m.commits {
		if m.supersededLocked(rec) {
			candidates = append(candidates, rec)
		}
	}
	m.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].ID().Less(candidates[j].ID())
	})
	if maxDelete > 0 && len(candidates) > maxDelete {
		candidates = candidates[:maxDelete]
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	ids := make([]idgen.ID, len(candidates))
	for i, rec := range candidates {
		ids[i] = rec.ID()
	}

	// Phase 2: unanimity (§5.2). In the symmetric mode every node must
	// have locally deleted the metadata. In sharded mode only the shard
	// owners cache a record, so only they vote; a record whose owner is
	// not currently live stays uncollected (conservative).
	nodes := m.membership.Nodes()
	m.mu.Lock()
	scope := m.scope
	m.mu.Unlock()
	confirmed := make(map[idgen.ID]bool, len(ids))
	for _, id := range ids {
		confirmed[id] = true
	}
	if scope == nil {
		for _, n := range nodes {
			deleted := n.LocallyDeleted(ids)
			for _, id := range ids {
				if !deleted[id] {
					confirmed[id] = false
				}
			}
		}
	} else {
		byID := make(map[string]Node, len(nodes))
		for _, n := range nodes {
			byID[n.ID()] = n
		}
		ballots := make(map[string][]idgen.ID) // voter node -> ids it must confirm
		for _, rec := range candidates {
			voters := scope(rec)
			if len(voters) == 0 {
				confirmed[rec.ID()] = false // unowned (ring in flux): keep
				continue
			}
			for _, v := range voters {
				if _, live := byID[v]; !live {
					confirmed[rec.ID()] = false
					continue
				}
				ballots[v] = append(ballots[v], rec.ID())
			}
		}
		for v, ballot := range ballots {
			// An owner votes to collect when it does NOT cache the
			// record: either its sweep deleted it, or it never received
			// it (shard gained after the record's multicast round — it
			// must not block collection forever).
			cached := byID[v].Caches(ballot)
			for _, id := range ballot {
				if cached[id] {
					confirmed[id] = false
				}
			}
		}
	}

	// Phase 3: delete data and metadata for fully confirmed transactions.
	// All confirmed transactions' key versions (and spill payloads) are
	// removed first, in shared BatchDelete round trips chunked by the
	// engine's limit — M versions cost ceil(M/limit) calls instead of M —
	// and the commit records only after every payload is gone, preserving
	// the per-transaction record-last ordering: a crash in between leaves
	// records a rescan re-processes (deletes are idempotent), never data
	// without an attributable record.
	var removed []idgen.ID
	var versions, recordKeys []string
	var versionCount int64
	seen := make(map[string]bool)
	for _, rec := range candidates {
		if !confirmed[rec.ID()] {
			continue
		}
		for _, k := range rec.WriteSet {
			versionCount++
			sk := rec.StorageKeyFor(k)
			if !seen[sk] { // a packed record maps its whole write set to one object
				seen[sk] = true
				versions = append(versions, sk)
			}
		}
		recordKeys = append(recordKeys, records.CommitKey(rec.ID()))
		removed = append(removed, rec.ID())
	}
	if len(removed) == 0 {
		return nil, nil
	}
	if err := m.store.BatchDelete(ctx, versions); err != nil {
		return nil, err
	}
	m.metrics.VersionsDeleted.Add(versionCount)
	if err := m.store.BatchDelete(ctx, recordKeys); err != nil {
		return nil, err
	}
	m.mu.Lock()
	for _, id := range removed {
		delete(m.commits, id)
	}
	m.mu.Unlock()
	for _, n := range nodes {
		n.ForgetDeleted(removed)
	}
	m.metrics.TxnsDeleted.Add(int64(len(removed)))
	collectEnd := time.Now()
	for _, rec := range candidates {
		if rec.TraceID != "" && confirmed[rec.ID()] {
			m.tracer.ForeignSpan(rec.TraceID, "faultmgr.collect",
				collectEnd, 0,
				map[string]string{"tx": rec.UUID})
		}
	}
	return removed, nil
}

// SweepSpills garbage-collects orphaned spill data (§3.3): intermediary
// writes proactively persisted by a saturated write buffer whose
// transaction crashed before committing. A spill directory is named
// "<startTimestamp>_<uuid>"; it is an orphan if no commit record with that
// UUID exists and its start timestamp is older than cutoff (a grace period
// protects in-flight transactions). Returns the number of keys deleted.
func (m *Manager) SweepSpills(ctx context.Context, cutoff int64) (int, error) {
	keys, err := m.store.List(ctx, records.SpillPrefix)
	if err != nil {
		return 0, err
	}
	// Commit records reference live spill dirs; collect them.
	live := make(map[string]bool)
	m.mu.Lock()
	for _, rec := range m.commits {
		if rec.SpillDir != "" {
			live[rec.SpillDir] = true
		}
	}
	m.mu.Unlock()

	deleted := 0
	for _, sk := range keys {
		dir, _, err := records.ParseSpillKey(sk)
		if err != nil {
			continue
		}
		if live[dir] {
			continue
		}
		id, err := idgen.Parse(dir)
		if err != nil || id.Timestamp >= cutoff {
			continue // malformed or within the grace period
		}
		// The transaction may have committed without the manager knowing;
		// check storage for a commit record carrying its UUID first.
		if committed, err := m.uuidCommitted(ctx, id.UUID); err != nil {
			return deleted, err
		} else if committed {
			continue
		}
		if err := m.store.Delete(ctx, sk); err != nil {
			return deleted, err
		}
		deleted++
	}
	return deleted, nil
}

// uuidCommitted reports whether any commit record in storage carries uuid.
func (m *Manager) uuidCommitted(ctx context.Context, uuid string) (bool, error) {
	keys, err := m.store.List(ctx, records.CommitPrefix)
	if err != nil {
		return false, err
	}
	for _, sk := range keys {
		id, err := records.ParseCommitKey(sk)
		if err == nil && id.UUID == uuid {
			return true, nil
		}
	}
	return false, nil
}
