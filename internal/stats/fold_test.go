package stats

import (
	"testing"
	"time"
)

// TestRecorderFoldMode drives a Recorder past foldLimit and checks the
// digest stays faithful: exact count/mean/min/max, percentiles within the
// histogram's bucket resolution.
func TestRecorderFoldMode(t *testing.T) {
	r := NewRecorder()
	const n = foldLimit + 5000
	for i := 0; i < n; i++ {
		// 1ms bulk with a 2% tail at 100ms, so p99 lands in the tail.
		d := time.Millisecond
		if i%50 == 0 {
			d = 100 * time.Millisecond
		}
		r.Record(d)
	}
	if !r.Folded() {
		t.Fatalf("recorder did not fold past %d samples", foldLimit)
	}
	if r.Count() != n {
		t.Fatalf("count = %d, want %d", r.Count(), n)
	}
	s := r.Summarize()
	if s.Count != n {
		t.Fatalf("summary count = %d, want %d", s.Count, n)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median < 900*time.Microsecond || s.Median > 1200*time.Microsecond {
		t.Fatalf("median = %v, want ~1ms", s.Median)
	}
	// The estimate must land within one 8% bucket step of 100ms.
	if s.P99 < 90*time.Millisecond || s.P99 > 115*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", s.P99)
	}
	if mean := s.Mean; mean < 2800*time.Microsecond || mean > 3200*time.Microsecond {
		t.Fatalf("mean = %v, want ~3ms", mean)
	}
}

// TestRecorderExactModeUnchanged: small runs never fold and keep true
// percentiles.
func TestRecorderExactModeUnchanged(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 1000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	if r.Folded() {
		t.Fatal("small run folded")
	}
	s := r.Summarize()
	if s.Median != 500*time.Microsecond {
		t.Fatalf("median = %v, want 500µs exactly", s.Median)
	}
	if s.P99 != 990*time.Microsecond {
		t.Fatalf("p99 = %v, want 990µs exactly", s.P99)
	}
}
