// Package stats provides the measurement plumbing for the benchmark
// harness: latency recorders with percentile summaries (the paper reports
// median and 99th percentile throughout §6) and throughput timelines for the
// time-series figures (Figures 9 and 10).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"aft/internal/telemetry"
)

// foldLimit is the exact-sample ceiling: a Recorder that collects more
// samples than this folds them into a fixed-bucket histogram and stops
// growing. Short runs (every test, most benchmarks) stay in exact mode and
// report true percentiles; long soak runs get bounded memory at the cost
// of bucket-resolution percentiles (~5% relative error from the log-bucket
// layout).
const foldLimit = 1 << 17

// Recorder accumulates latency samples. It is safe for concurrent use.
// Memory is bounded: past foldLimit samples it switches to histogram mode
// (see foldLimit).
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
	// Histogram mode, active once hist != nil. The exact min/max/sum/count
	// are still tracked so only the percentiles become approximate.
	hist     *telemetry.Histogram
	count    int
	sum      time.Duration
	min, max time.Duration
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// foldBuckets is the histogram-mode layout: 10µs to 30s at 8% steps
// (~160 buckets), fine enough that a folded p99 lands within one step of
// the exact one.
func foldBuckets() []float64 {
	return telemetry.LogBuckets(10*time.Microsecond, 30*time.Second, 1.08)
}

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	if r.hist == nil {
		r.samples = append(r.samples, d)
		if len(r.samples) < foldLimit {
			r.mu.Unlock()
			return
		}
		r.foldLocked()
		r.mu.Unlock()
		return
	}
	r.count++
	r.sum += d
	if d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.hist.Observe(d)
	r.mu.Unlock()
}

// foldLocked moves every exact sample into the bounded histogram. Callers
// hold r.mu.
func (r *Recorder) foldLocked() {
	r.hist = telemetry.NewHistogram(foldBuckets())
	r.min, r.max = r.samples[0], r.samples[0]
	for _, d := range r.samples {
		r.hist.Observe(d)
		r.sum += d
		if d < r.min {
			r.min = d
		}
		if d > r.max {
			r.max = d
		}
	}
	r.count = len(r.samples)
	r.samples = nil
}

// Folded reports whether the recorder has switched to histogram mode.
func (r *Recorder) Folded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hist != nil
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hist != nil {
		return r.count
	}
	return len(r.samples)
}

// Summary is a percentile digest of a set of latency samples.
type Summary struct {
	Count  int
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Summarize computes the digest of everything recorded so far. In exact
// mode the percentiles are true nearest-rank values; in histogram mode
// (see foldLimit) they come from the bucket layout while count, mean, min
// and max stay exact.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	if r.hist != nil {
		h, count, sum, min, max := r.hist, r.count, r.sum, r.min, r.max
		r.mu.Unlock()
		snap := h.Snapshot()
		return Summary{
			Count:  count,
			Median: snap.Quantile(0.50),
			P95:    snap.Quantile(0.95),
			P99:    snap.Quantile(0.99),
			Mean:   sum / time.Duration(count),
			Min:    min,
			Max:    max,
		}
	}
	s := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return Summarize(s)
}

// Summarize computes a percentile digest of samples. An empty input yields a
// zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count:  len(s),
		Median: Percentile(s, 50),
		P95:    Percentile(s, 95),
		P99:    Percentile(s, 99),
		Mean:   sum / time.Duration(len(s)),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) of sorted samples
// using nearest-rank. It panics if sorted is empty.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Millis renders d as fractional milliseconds, the unit used in the paper's
// latency figures.
func Millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// String renders the summary in "median/p99" form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d median=%.1fms p99=%.1fms", s.Count, Millis(s.Median), Millis(s.P99))
}

// Timeline bins events into fixed-width buckets to produce
// throughput-over-time series (Figures 9 and 10). It is safe for concurrent
// use.
type Timeline struct {
	mu     sync.Mutex
	width  time.Duration
	counts []int64
	start  time.Time
}

// NewTimeline returns a Timeline with the given bucket width, anchored at
// start.
func NewTimeline(start time.Time, width time.Duration) *Timeline {
	if width <= 0 {
		width = time.Second
	}
	return &Timeline{width: width, start: start}
}

// Add records one event at time t. Events before start are clamped into the
// first bucket.
func (tl *Timeline) Add(t time.Time) {
	idx := int(t.Sub(tl.start) / tl.width)
	if idx < 0 {
		idx = 0
	}
	tl.mu.Lock()
	for len(tl.counts) <= idx {
		tl.counts = append(tl.counts, 0)
	}
	tl.counts[idx]++
	tl.mu.Unlock()
}

// Point is one bucket of a Timeline expressed as a rate.
type Point struct {
	// Offset is the bucket's start offset from the timeline anchor.
	Offset time.Duration
	// Rate is events per second within the bucket.
	Rate float64
}

// Series returns the timeline as per-second rates.
func (tl *Timeline) Series() []Point {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Point, len(tl.counts))
	secs := tl.width.Seconds()
	for i, c := range tl.counts {
		out[i] = Point{Offset: time.Duration(i) * tl.width, Rate: float64(c) / secs}
	}
	return out
}

// Counter is a concurrency-safe monotonic event counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Inc adds delta to the counter.
func (c *Counter) Inc(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
