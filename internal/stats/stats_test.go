package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Median != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zero", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]time.Duration{5 * time.Millisecond})
	if s.Count != 1 || s.Median != 5*time.Millisecond || s.P99 != 5*time.Millisecond ||
		s.Min != 5*time.Millisecond || s.Max != 5*time.Millisecond {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnownDistribution(t *testing.T) {
	// 1..100 ms
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := Summarize(samples)
	if s.Median != 50*time.Millisecond {
		t.Errorf("median = %v, want 50ms", s.Median)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", s.P99)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", s.Mean)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentileBounds(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4}
	if Percentile(sorted, 0) != 1 {
		t.Error("p0 should be min")
	}
	if Percentile(sorted, 100) != 4 {
		t.Error("p100 should be max")
	}
	if Percentile(sorted, 50) != 2 {
		t.Errorf("p50 = %v, want 2", Percentile(sorted, 50))
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile of empty slice should panic")
		}
	}()
	Percentile(nil, 50)
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]time.Duration, len(raw))
		for i, v := range raw {
			if v < 0 {
				v = -v
			}
			s[i] = time.Duration(v)
		}
		sum := Summarize(s)
		return sum.Min <= sum.Median && sum.Median <= sum.P95 &&
			sum.P95 <= sum.P99 && sum.P99 <= sum.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", r.Count())
	}
	if s := r.Summarize(); s.Median != time.Millisecond {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestMillis(t *testing.T) {
	if Millis(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Millis = %v", Millis(1500*time.Microsecond))
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Count: 3, Median: time.Millisecond, P99: 2 * time.Millisecond}
	if got := s.String(); got != "n=3 median=1.0ms p99=2.0ms" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTimeline(t *testing.T) {
	start := time.Unix(0, 0)
	tl := NewTimeline(start, time.Second)
	tl.Add(start)
	tl.Add(start.Add(100 * time.Millisecond))
	tl.Add(start.Add(1500 * time.Millisecond))
	tl.Add(start.Add(-time.Hour)) // clamped to first bucket
	pts := tl.Series()
	if len(pts) != 2 {
		t.Fatalf("series length = %d, want 2", len(pts))
	}
	if pts[0].Rate != 3 {
		t.Errorf("bucket 0 rate = %v, want 3", pts[0].Rate)
	}
	if pts[1].Rate != 1 {
		t.Errorf("bucket 1 rate = %v, want 1", pts[1].Rate)
	}
	if pts[1].Offset != time.Second {
		t.Errorf("bucket 1 offset = %v", pts[1].Offset)
	}
}

func TestTimelineZeroWidthDefaultsToSecond(t *testing.T) {
	tl := NewTimeline(time.Unix(0, 0), 0)
	tl.Add(time.Unix(0, 0).Add(2500 * time.Millisecond))
	pts := tl.Series()
	if len(pts) != 3 {
		t.Fatalf("series length = %d, want 3", len(pts))
	}
}

func TestTimelineConcurrent(t *testing.T) {
	start := time.Now()
	tl := NewTimeline(start, 10*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tl.Add(time.Now())
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, p := range tl.Series() {
		total += p.Rate * 0.01
	}
	if int(total+0.5) != 1600 {
		t.Fatalf("total events = %v, want 1600", total)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc(2)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2000 {
		t.Fatalf("counter = %d, want 2000", c.Value())
	}
}
