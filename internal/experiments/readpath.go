package experiments

import (
	"context"
	"fmt"
	"sync"

	"aft/internal/core"
	"aft/internal/faultmgr"
	"aft/internal/storage"
	"aft/internal/workload"
)

// ReadPath measures the batched + coalesced read pipeline against the
// per-record-Get baseline (Config.DisableReadBatching — the pre-batching
// read path), in storage round trips rather than wall-clock: the paper's
// read-side overhead (§6.2, §6.3) is dominated by storage API calls, and
// round-trip counts are hardware-independent where a 1-CPU host cannot
// show overlap. Four scenarios:
//
//   - coldfetch: a fresh sharded node reads keys whose metadata lives only
//     in storage. Baseline pays 1 List + N point Gets per key (N = unknown
//     versions); batched pays 1 List + ceil(N/limit) BatchGets.
//   - coalesce: many concurrent readers hit few cold keys. The
//     singleflight shares one List+BatchGet per key across all of them.
//   - multiget: transactions read G keys each. Batched MultiGet fetches
//     every cache-missing payload in shared BatchGet round trips; the
//     baseline pays G point Gets.
//   - gc: one global-GC round over M superseded versions. BatchDelete
//     retires them in ceil(M/limit) round trips where the old GC issued
//     one Delete per version plus one per commit record.
func ReadPath(opts Options) (Table, error) {
	cells, err := ReadPathCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ReadPathTable(cells)
}

// ReadPathCell is one (scenario, config) measurement, exposed for the
// bench harness's machine-readable output.
type ReadPathCell struct {
	Scenario string // "coldfetch" | "coalesce" | "multiget" | "gc"
	Config   string // "baseline" | "batched"
	Keys     int    // distinct user keys in the scenario
	Versions int    // versions per key (coldfetch/gc)
	Readers  int    // concurrent readers (coalesce) / transactions (multiget)
	Ops      int64  // logical operations measured (reads, or versions collected)
	// Storage round-trip evidence.
	Lists            int64
	Gets             int64
	BatchGets        int64
	BatchGetItems    int64
	Deletes          int64
	BatchDeletes     int64
	BatchDeleteItems int64
	Calls            int64
	CallsPerOp       float64
	// Node-side pipeline counters.
	CoalescedFetches int64
	RemoteFetches    int64
}

// readPathConfigs are the two node configurations every scenario compares.
func readPathConfigs() []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Config{DisableReadBatching: true}},
		{"batched", core.Config{}},
	}
}

// ReadPathTable renders measured cells, pairing each batched cell with its
// baseline for the call-reduction column.
func ReadPathTable(cells []ReadPathCell) (Table, error) {
	table := Table{
		Title: "Read pipeline: batched + coalesced fetches vs per-record-Get baseline",
		Header: []string{"scenario", "config", "keys", "versions", "readers",
			"lists", "gets", "batchgets", "batchdeletes", "calls/op", "coalesced", "reduction"},
		Notes: []string{
			"baseline: DisableReadBatching — per-record point Gets, no cold-read singleflight",
			"batched: BatchGet record/payload fetches + one in-flight List+BatchGet per cold key",
			"coldfetch: calls/op = storage round trips per cold key read (1 List + records + payload)",
			"coalesce: K concurrent readers of each cold key; lists ≈ cold keys shows the singleflight",
			"multiget: calls/op = storage round trips per G-key MultiGet transaction",
			"gc: one CollectOnce round; the pre-batching GC issued one Delete per version + record",
			"reduction: baseline calls/op over batched calls/op, same scenario",
		},
	}
	base := make(map[string]ReadPathCell)
	for _, c := range cells {
		if c.Config == "baseline" {
			base[c.Scenario] = c
		}
	}
	for _, c := range cells {
		reduction := "-"
		if c.Config != "baseline" {
			if b, ok := base[c.Scenario]; ok && c.CallsPerOp > 0 {
				reduction = fmt.Sprintf("%.1fx", b.CallsPerOp/c.CallsPerOp)
			}
		}
		table.Rows = append(table.Rows, []string{
			c.Scenario, c.Config, fmt.Sprint(c.Keys), fmt.Sprint(c.Versions),
			fmt.Sprint(c.Readers),
			fmt.Sprint(c.Lists), fmt.Sprint(c.Gets), fmt.Sprint(c.BatchGets),
			fmt.Sprint(c.BatchDeletes),
			fmt.Sprintf("%.1f", c.CallsPerOp),
			fmt.Sprint(c.CoalescedFetches),
			reduction,
		})
	}
	return table, nil
}

// ReadPathCells runs the read-path experiment and returns the raw cells
// (the bench harness serializes them to BENCH_readpath.json).
func ReadPathCells(opts Options) ([]ReadPathCell, error) {
	opts = opts.withDefaults()
	var cells []ReadPathCell
	for _, cfg := range readPathConfigs() {
		cell, err := runColdFetch(opts, cfg.name, cfg.cfg)
		if err != nil {
			return cells, err
		}
		cells = append(cells, cell)
	}
	for _, cfg := range readPathConfigs() {
		cell, err := runCoalesce(opts, cfg.name, cfg.cfg)
		if err != nil {
			return cells, err
		}
		cells = append(cells, cell)
	}
	for _, cfg := range readPathConfigs() {
		cell, err := runMultiGet(opts, cfg.name, cfg.cfg)
		if err != nil {
			return cells, err
		}
		cells = append(cells, cell)
	}
	cell, err := runGCRound(opts)
	if err != nil {
		return cells, err
	}
	cells = append(cells, cell)
	return cells, nil
}

// seedReadPath commits versions of each key through a loader node over the
// shared store and returns the keys.
func seedReadPath(ctx context.Context, store storage.Store, keys, versions int, payload []byte) ([]string, error) {
	loader, err := core.NewNode(core.Config{NodeID: "rp-loader", Store: store})
	if err != nil {
		return nil, err
	}
	names := make([]string, keys)
	for i := range names {
		names[i] = workload.KeyName(i)
	}
	for v := 0; v < versions; v++ {
		for _, k := range names {
			txid, err := loader.StartTransaction(ctx)
			if err != nil {
				return nil, err
			}
			if err := loader.Put(ctx, txid, k, payload); err != nil {
				return nil, err
			}
			if _, err := loader.CommitTransaction(ctx, txid); err != nil {
				return nil, err
			}
		}
	}
	return names, nil
}

// freshShardedReader builds a node with an empty metadata cache and a
// non-nil ownership filter, so every first read takes the storage
// fallback — the cold-read path under measurement.
func freshShardedReader(name string, store storage.Store, cfg core.Config) (*core.Node, error) {
	cfg.NodeID = name
	cfg.Store = store
	cfg.EnableDataCache = true
	cfg.DataCacheEntries = 16384
	node, err := core.NewNode(cfg)
	if err != nil {
		return nil, err
	}
	node.SetOwnership(func(string) bool { return true })
	return node, nil
}

func storeMetricsOf(store storage.Store) (*storage.Metrics, error) {
	type metered interface{ Metrics() *storage.Metrics }
	sm, ok := store.(metered)
	if !ok {
		return nil, fmt.Errorf("store %s exposes no metrics", store.Name())
	}
	return sm.Metrics(), nil
}

func (c *ReadPathCell) fill(d storage.Snapshot, ops int64) {
	c.Ops = ops
	c.Lists = d.Lists
	c.Gets = d.Gets
	c.BatchGets = d.BatchGets
	c.BatchGetItems = d.BatchGetItems
	c.Deletes = d.Deletes
	c.BatchDeletes = d.BatchDeletes
	c.BatchDeleteItems = d.BatchDeleteItems
	c.Calls = d.Calls()
	if ops > 0 {
		c.CallsPerOp = float64(d.Calls()) / float64(ops)
	}
}

// runColdFetch reads every seeded key once on a fresh sharded node: the
// per-key cost is the List, the record fetch (N versions), and one payload
// fetch.
func runColdFetch(opts Options, cfgName string, cfg core.Config) (ReadPathCell, error) {
	ctx := context.Background()
	cell := ReadPathCell{Scenario: "coldfetch", Config: cfgName,
		Keys: opts.scaled(16), Versions: opts.scaled(30)}
	store := opts.newStore(kindDynamo)
	payload := workload.Payload(opts.Seed, opts.Payload)
	keys, err := seedReadPath(ctx, store, cell.Keys, cell.Versions, payload)
	if err != nil {
		return cell, err
	}
	node, err := freshShardedReader("rp-cold-"+cfgName, store, cfg)
	if err != nil {
		return cell, err
	}
	sm, err := storeMetricsOf(store)
	if err != nil {
		return cell, err
	}
	before := sm.Snapshot()
	for _, k := range keys {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return cell, err
		}
		if _, err := node.Get(ctx, txid, k); err != nil {
			return cell, err
		}
		if err := node.AbortTransaction(ctx, txid); err != nil {
			return cell, err
		}
	}
	cell.fill(sm.Snapshot().Sub(before), int64(len(keys)))
	m := node.Metrics().Snapshot()
	cell.CoalescedFetches, cell.RemoteFetches = m.CoalescedFetches, m.RemoteFetches
	return cell, nil
}

// runCoalesce points many concurrent readers at few cold keys: with the
// singleflight each cold key costs ONE List + one record batch no matter
// how many readers arrive; the baseline lets every racer pay its own.
func runCoalesce(opts Options, cfgName string, cfg core.Config) (ReadPathCell, error) {
	ctx := context.Background()
	cell := ReadPathCell{Scenario: "coalesce", Config: cfgName,
		Keys: 4, Versions: opts.scaled(10), Readers: opts.scaled(64)}
	store := opts.newStore(kindDynamo)
	payload := workload.Payload(opts.Seed, opts.Payload)
	keys, err := seedReadPath(ctx, store, cell.Keys, cell.Versions, payload)
	if err != nil {
		return cell, err
	}
	node, err := freshShardedReader("rp-coal-"+cfgName, store, cfg)
	if err != nil {
		return cell, err
	}
	sm, err := storeMetricsOf(store)
	if err != nil {
		return cell, err
	}
	before := sm.Snapshot()
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	errs := make(chan error, cell.Readers)
	for r := 0; r < cell.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			start.Wait() // all readers release together
			txid, err := node.StartTransaction(ctx)
			if err != nil {
				errs <- err
				return
			}
			if _, err := node.Get(ctx, txid, keys[r%len(keys)]); err != nil {
				errs <- err
				return
			}
			errs <- node.AbortTransaction(ctx, txid)
		}(r)
	}
	start.Done()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return cell, err
		}
	}
	cell.fill(sm.Snapshot().Sub(before), int64(cell.Readers))
	m := node.Metrics().Snapshot()
	cell.CoalescedFetches, cell.RemoteFetches = m.CoalescedFetches, m.RemoteFetches
	return cell, nil
}

// runMultiGet drives G-key MultiGet transactions with the data cache off,
// so every payload is a storage fetch: the batched pipeline shares round
// trips, the baseline pays one Get per key.
func runMultiGet(opts Options, cfgName string, cfg core.Config) (ReadPathCell, error) {
	ctx := context.Background()
	const keysPerTxn = 10
	cell := ReadPathCell{Scenario: "multiget", Config: cfgName,
		Keys: opts.scaled(256), Versions: 1, Readers: opts.scaled(200)}
	store := opts.newStore(kindDynamo)
	payload := workload.Payload(opts.Seed, opts.Payload)
	keys, err := seedReadPath(ctx, store, cell.Keys, 1, payload)
	if err != nil {
		return cell, err
	}
	cfg.NodeID = "rp-mg-" + cfgName
	cfg.Store = store
	cfg.EnableDataCache = false
	node, err := core.NewNode(cfg)
	if err != nil {
		return cell, err
	}
	// Warm the metadata (not the data — the cache is off) so the cells
	// measure payload fetches, not cold-start recovery.
	if err := node.Bootstrap(ctx); err != nil {
		return cell, err
	}
	sm, err := storeMetricsOf(store)
	if err != nil {
		return cell, err
	}
	before := sm.Snapshot()
	for i := 0; i < cell.Readers; i++ {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return cell, err
		}
		batch := make([]string, keysPerTxn)
		for j := range batch {
			batch[j] = keys[(i*keysPerTxn+j)%len(keys)]
		}
		if _, err := node.MultiGet(ctx, txid, batch); err != nil {
			return cell, err
		}
		if err := node.AbortTransaction(ctx, txid); err != nil {
			return cell, err
		}
	}
	cell.fill(sm.Snapshot().Sub(before), int64(cell.Readers))
	return cell, nil
}

// runGCRound seeds a superseded history and runs one CollectOnce: M
// versions (plus their commit records) must retire in batched delete round
// trips. There is no config toggle on the manager — the baseline is the
// arithmetic one-point-Delete-per-key the old GC issued, reported in the
// table notes.
func runGCRound(opts Options) (ReadPathCell, error) {
	ctx := context.Background()
	cell := ReadPathCell{Scenario: "gc", Config: "batched",
		Keys: 8, Versions: opts.scaled(30)}
	store := opts.newStore(kindDynamo)
	node, err := core.NewNode(core.Config{NodeID: "rp-gc", Store: store})
	if err != nil {
		return cell, err
	}
	fm := faultmgr.New(store, faultmgr.StaticMembership{node})
	payload := workload.Payload(opts.Seed, 256)
	for v := 0; v < cell.Versions; v++ {
		for i := 0; i < cell.Keys; i++ {
			txid, err := node.StartTransaction(ctx)
			if err != nil {
				return cell, err
			}
			if err := node.Put(ctx, txid, workload.KeyName(i), payload); err != nil {
				return cell, err
			}
			if _, err := node.CommitTransaction(ctx, txid); err != nil {
				return cell, err
			}
		}
	}
	fm.Ingest(node.ID(), node.Drain())
	node.SweepLocalMetadata(0)
	sm, err := storeMetricsOf(store)
	if err != nil {
		return cell, err
	}
	before := sm.Snapshot()
	removed, err := fm.CollectOnce(ctx, 0)
	if err != nil {
		return cell, err
	}
	cell.fill(sm.Snapshot().Sub(before), int64(len(removed)))
	return cell, nil
}
