package experiments

// recovery.go measures the checkpointed-recovery layer end to end: WAL
// index checkpoints turn reopen cost from O(log) into O(tail), the
// watermark/incremental bootstrap turns a node restart's storage traffic
// from O(history) into O(delta), the metadata budget keeps a node's
// resident bytes bounded under sustained load (shedding retriably past
// the ceiling), and a seeded chaos campaign — storage crashes landing
// mid-spill and alongside background checkpoints, node kills promoted via
// incremental bootstrap — ends in the history checker's CLEAN verdict.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"aft/internal/chaos"
	"aft/internal/checker"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/records"
	"aft/internal/storage/dynamosim"
	"aft/internal/storage/walengine"
	"aft/internal/workload"
)

// Recovery runs the full experiment and renders its table.
func Recovery(opts Options) (Table, error) {
	cells, err := RecoveryCells(opts)
	if err != nil {
		return Table{}, err
	}
	return RecoveryTable(cells)
}

// RecoveryCell is one measurement, exposed for BENCH_recovery.json.
// Scenario selects which fields are meaningful:
//
//   - "recovery": one log size's reopen cost, full replay vs checkpointed
//     tail replay (the recovery-time-versus-tail curve);
//   - "bootstrap": one watermark delta's restart traffic, fetched versus
//     skipped records (the bootstrap-traffic-versus-delta curve);
//   - "budget": a budget-constrained node under sustained load;
//   - "campaign": one seed's chaos campaign over the checkpointing WAL
//     with budgeted nodes and incremental promotions.
type RecoveryCell struct {
	Scenario string `json:"scenario"`

	// Recovery (checkpoint vs full replay).
	Entries           int     `json:"entries,omitempty"`
	Keys              int     `json:"keys,omitempty"`
	Segments          int     `json:"segments,omitempty"`
	TailRecords       int     `json:"tail_records,omitempty"`
	FullReplayMS      float64 `json:"full_replay_ms,omitempty"`
	CheckpointedMS    float64 `json:"checkpointed_ms,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	CheckpointEntries int64   `json:"checkpoint_entries,omitempty"`
	ReplayedTail      int64   `json:"replayed_tail,omitempty"`

	// Bootstrap (incremental vs full).
	Records        int     `json:"records,omitempty"`
	DeltaRecords   int     `json:"delta_records,omitempty"`
	FetchedRecords int     `json:"fetched_records,omitempty"`
	SkippedRecords int64   `json:"skipped_records,omitempty"`
	BootstrapMS    float64 `json:"bootstrap_ms,omitempty"`

	// Budget.
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
	PeakBytes     int64 `json:"peak_bytes,omitempty"`
	FinalBytes    int64 `json:"final_bytes,omitempty"`
	Spilled       int64 `json:"spilled,omitempty"`
	Shed          int64 `json:"shed,omitempty"`
	RemoteFetches int64 `json:"remote_fetches,omitempty"`

	// Campaign.
	Seed               int64            `json:"seed,omitempty"`
	Requests           int              `json:"requests,omitempty"`
	Committed          int64            `json:"committed,omitempty"`
	Redos              int64            `json:"redos,omitempty"`
	StorageCrashes     int              `json:"storage_crashes,omitempty"`
	Kills              int              `json:"kills,omitempty"`
	Promotions         int              `json:"promotions,omitempty"`
	BootstrapSkipped   int64            `json:"bootstrap_skipped,omitempty"`
	Checkpoints        int64            `json:"checkpoints,omitempty"`
	CheckpointRestored int64            `json:"checkpoint_restored,omitempty"`
	InjectedErrors     int64            `json:"injected_errors,omitempty"`
	Verdict            *checker.Verdict `json:"verdict,omitempty"`
}

// RecoveryTable renders measured cells.
func RecoveryTable(cells []RecoveryCell) (Table, error) {
	table := Table{
		Title: "Recovery: WAL checkpoints, incremental bootstrap, metadata budget, chaos campaign",
		Header: []string{"scenario", "detail", "full ms", "ckpt ms", "speedup",
			"fetched", "skipped", "spilled", "shed", "verdict"},
		Notes: []string{
			"recovery: reopen of the same log cold (full replay) vs with a checkpoint + 1% tail",
			"bootstrap: restart warm-up fetching only commit records past the watermark; skipped history serves on demand",
			"budget: sustained load against MetadataBudgetBytes; past the hard ceiling the node sheds retriably",
			"campaign: seeded chaos (storage crashes incl. one armed mid-spill, kills with incremental promotion) over the checkpointing WAL",
			"verdict: the history checker's full replay + final-state lost-write audit",
		},
	}
	dash := func(ok bool, s string) string {
		if ok {
			return s
		}
		return "-"
	}
	for _, c := range cells {
		detail, verdict := "", "-"
		switch c.Scenario {
		case "recovery":
			detail = fmt.Sprintf("%d entries / %d keys, %d segs", c.Entries, c.Keys, c.Segments)
		case "bootstrap":
			detail = fmt.Sprintf("%d records, delta %d", c.Records, c.DeltaRecords)
		case "budget":
			detail = fmt.Sprintf("budget %d B, %d commits", c.BudgetBytes, c.Records)
		case "campaign":
			detail = fmt.Sprintf("seed %d, %d reqs", c.Seed, c.Requests)
			if c.Verdict != nil {
				if c.Verdict.Clean() {
					verdict = "CLEAN"
				} else {
					verdict = "ANOMALOUS"
				}
			}
		}
		table.Rows = append(table.Rows, []string{
			c.Scenario, detail,
			dash(c.FullReplayMS > 0, fmt.Sprintf("%.1f", c.FullReplayMS)),
			dash(c.CheckpointedMS > 0, fmt.Sprintf("%.1f", c.CheckpointedMS)),
			dash(c.Speedup > 0, fmt.Sprintf("%.1fx", c.Speedup)),
			dash(c.Scenario == "bootstrap", fmt.Sprint(c.FetchedRecords)),
			dash(c.SkippedRecords > 0 || c.Scenario == "bootstrap", fmt.Sprint(c.SkippedRecords)),
			dash(c.Spilled > 0, fmt.Sprint(c.Spilled)),
			dash(c.Scenario == "budget", fmt.Sprint(c.Shed)),
			verdict,
		})
	}
	return table, nil
}

// RecoveryCells runs every scenario: a checkpoint-vs-replay sweep over
// growing logs, an incremental-bootstrap delta sweep, a budget-constrained
// run, and one chaos campaign per seed (opts.Seed, +1, +2) — the
// acceptance bar is a zero-anomaly verdict in each campaign and, at full
// scale, a >=10x checkpointed-reopen speedup on the largest log.
func RecoveryCells(opts Options) ([]RecoveryCell, error) {
	opts = opts.withDefaults()
	var cells []RecoveryCell
	for _, entries := range []int{opts.scaled(12000), opts.scaled(40000), opts.scaled(120000)} {
		cell, err := runRecoveryReopen(opts, entries)
		if err != nil {
			return cells, fmt.Errorf("recovery reopen %d: %w", entries, err)
		}
		cells = append(cells, cell)
	}
	for _, frac := range []float64{1.0, 0.25, 0.05} {
		cell, err := runRecoveryBootstrap(opts, frac)
		if err != nil {
			return cells, fmt.Errorf("recovery bootstrap %.2f: %w", frac, err)
		}
		cells = append(cells, cell)
	}
	{
		cell, err := runRecoveryBudget(opts)
		if err != nil {
			return cells, fmt.Errorf("recovery budget: %w", err)
		}
		cells = append(cells, cell)
	}
	for i := int64(0); i < 3; i++ {
		cell, err := runRecoveryCampaign(opts, opts.Seed+i)
		if err != nil {
			return cells, fmt.Errorf("recovery campaign seed %d: %w", opts.Seed+i, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// runRecoveryReopen measures the same log's reopen cost twice: cold (full
// replay of every record) and with a fresh checkpoint plus a 1% tail. The
// log overwrites each key ~50 times, so the checkpoint's index (one entry
// per live key) is ~50x smaller than the record stream — the structural
// ratio the speedup comes from.
func runRecoveryReopen(opts Options, entries int) (RecoveryCell, error) {
	ctx := context.Background()
	keys := entries / 50
	if keys < 10 {
		keys = 10
	}
	tail := entries / 100
	if tail < 10 {
		tail = 10
	}
	cell := RecoveryCell{Scenario: "recovery", Entries: entries, Keys: keys, TailRecords: tail}

	dir, cleanup, err := walDir()
	if err != nil {
		return cell, err
	}
	defer cleanup()
	st, err := walengine.Open(dir, walengine.Options{
		SegmentBytes: 1 << 20, DisableAutoCompact: true,
	})
	if err != nil {
		return cell, err
	}
	defer st.Close()

	payload := workload.Payload(opts.Seed, 128)
	// Flush on loop count, not map size: keys repeat (the overwrite churn
	// the checkpoint collapses), so the map stays small. The chunk never
	// exceeds the key count, so consecutive i%keys within one batch are
	// distinct and every loop iteration lands one record in the log.
	chunk := 100
	if chunk > keys {
		chunk = keys
	}
	batch := make(map[string][]byte, chunk)
	for i := 0; i < entries; i++ {
		batch[fmt.Sprintf("r-%07d", i%keys)] = payload
		if (i+1)%chunk == 0 || i == entries-1 {
			if err := st.BatchPut(ctx, batch); err != nil {
				return cell, err
			}
			batch = make(map[string][]byte, chunk)
		}
	}

	// Cold reopen: no checkpoint exists yet, every record replays.
	if err := st.Close(); err != nil {
		return cell, err
	}
	before := st.WAL().Snapshot().ReplayedRecords
	start := time.Now()
	if err := st.Reopen(); err != nil {
		return cell, err
	}
	cell.FullReplayMS = float64(time.Since(start).Microseconds()) / 1000
	if replayed := st.WAL().Snapshot().ReplayedRecords - before; replayed < int64(entries) {
		return cell, fmt.Errorf("cold reopen replayed %d records, want >= %d", replayed, entries)
	}
	if got := st.Len(); got != keys {
		return cell, fmt.Errorf("cold reopen recovered %d keys, want %d", got, keys)
	}

	// Checkpoint, append the tail, reopen again: only the tail replays.
	ckpt, err := st.Checkpoint(ctx)
	if err != nil {
		return cell, err
	}
	cell.CheckpointEntries = int64(ckpt.Entries)
	cell.Segments = ckpt.Segments
	for i := 0; i < tail; i++ {
		batch[fmt.Sprintf("r-%07d", i%keys)] = payload
		if (i+1)%chunk == 0 || i == tail-1 {
			if err := st.BatchPut(ctx, batch); err != nil {
				return cell, err
			}
			batch = make(map[string][]byte, chunk)
		}
	}
	if err := st.Close(); err != nil {
		return cell, err
	}
	beforeTail := st.WAL().Snapshot().ReplayedTailRecords
	start = time.Now()
	if err := st.Reopen(); err != nil {
		return cell, err
	}
	cell.CheckpointedMS = float64(time.Since(start).Microseconds()) / 1000
	cell.ReplayedTail = st.WAL().Snapshot().ReplayedTailRecords - beforeTail
	if cell.ReplayedTail > int64(2*tail) {
		return cell, fmt.Errorf("checkpointed reopen replayed %d records, want ~%d (tail only)", cell.ReplayedTail, tail)
	}
	if got := st.Len(); got != keys {
		return cell, fmt.Errorf("checkpointed reopen recovered %d keys, want %d", got, keys)
	}
	if cell.CheckpointedMS > 0 {
		cell.Speedup = cell.FullReplayMS / cell.CheckpointedMS
	}
	return cell, nil
}

// runRecoveryBootstrap measures a restart's warm-up traffic at one
// watermark delta: with frac of the commit history still ahead of the
// watermark, BootstrapSince must fetch ~frac of the records and skip the
// rest (served on demand afterwards). frac 1.0 is the cold-start control.
func runRecoveryBootstrap(opts Options, frac float64) (RecoveryCell, error) {
	ctx := context.Background()
	total := opts.scaled(2000)
	cell := RecoveryCell{Scenario: "bootstrap", Records: total}

	store := dynamosim.New(dynamosim.Options{})
	clock := idgen.NewVirtualClock(chaosEpoch, 1)
	writer, err := core.NewNode(core.Config{NodeID: "w", Store: store, Clock: clock})
	if err != nil {
		return cell, err
	}
	payload := workload.Payload(opts.Seed, 64)
	const perTxn = 5
	for start := 0; start < total; start += perTxn {
		txid, err := writer.StartTransaction(ctx)
		if err != nil {
			return cell, err
		}
		for i := start; i < start+perTxn && i < total; i++ {
			if err := writer.Put(ctx, txid, fmt.Sprintf("b-%05d", i), payload); err != nil {
				return cell, err
			}
		}
		if _, err := writer.CommitTransaction(ctx, txid); err != nil {
			return cell, err
		}
	}

	// The watermark sits (1-frac) of the way through the sorted history.
	commitKeys, err := store.List(ctx, records.CommitPrefix)
	if err != nil {
		return cell, err
	}
	sort.Strings(commitKeys)
	cell.Records = len(commitKeys) // commit records, not keys: the bootstrap unit
	since := ""
	cut := int(float64(len(commitKeys)) * (1 - frac))
	if cut > 0 {
		since = commitKeys[cut-1]
	}
	cell.DeltaRecords = len(commitKeys) - cut

	node, err := core.NewNode(core.Config{NodeID: "r", Store: store, Clock: clock})
	if err != nil {
		return cell, err
	}
	start := time.Now()
	if err := node.BootstrapSince(ctx, since); err != nil {
		return cell, err
	}
	cell.BootstrapMS = float64(time.Since(start).Microseconds()) / 1000
	cell.FetchedRecords = node.MetadataSize()
	cell.SkippedRecords = node.Metrics().Snapshot().BootstrapSkipped
	if cell.FetchedRecords != cell.DeltaRecords {
		return cell, fmt.Errorf("fetched %d records, want the %d-record delta", cell.FetchedRecords, cell.DeltaRecords)
	}
	// Skipped history must still serve: read the very first key on demand.
	if cut > 0 {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return cell, err
		}
		if _, err := node.Get(ctx, txid, "b-00000"); err != nil {
			return cell, fmt.Errorf("pre-watermark key unreadable after incremental bootstrap: %w", err)
		}
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			return cell, err
		}
	}
	return cell, nil
}

// runRecoveryBudget drives sustained distinct-key commits against a node
// whose budget is far below the live record set: enforcement must spill
// cold records, reads must recover them on demand, the ceiling must shed
// retriably, and the final resident bytes must sit under the budget.
func runRecoveryBudget(opts Options) (RecoveryCell, error) {
	ctx := context.Background()
	// Even quick mode's scaled count must leave the live record set several
	// times the budget, or nothing ever spills.
	commits := opts.scaled(6000)
	const budget = 12 << 10
	cell := RecoveryCell{Scenario: "budget", BudgetBytes: budget, Records: commits}

	store := dynamosim.New(dynamosim.Options{})
	node, err := core.NewNode(core.Config{
		NodeID: "b", Store: store,
		Clock:               idgen.NewVirtualClock(chaosEpoch, 1),
		MetadataBudgetBytes: budget,
	})
	if err != nil {
		return cell, err
	}

	payload := workload.Payload(opts.Seed, 64)
	commit := func(i int) error {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return err
		}
		if err := node.Put(ctx, txid, fmt.Sprintf("c-%05d", i), payload); err != nil {
			return err
		}
		_, err = node.CommitTransaction(ctx, txid)
		return err
	}
	for i := 0; i < commits; i++ {
		err := commit(i)
		for attempt := 0; err == core.ErrOverloaded && attempt < 8; attempt++ {
			// The shed contract: enforcement releases memory, the retry
			// admits.
			if _, err = node.EnforceBudget(ctx); err != nil {
				return cell, err
			}
			err = commit(i)
		}
		if err != nil {
			return cell, err
		}
		if b := node.MetadataBytes(); b > cell.PeakBytes {
			cell.PeakBytes = b
		}
		if (i+1)%25 == 0 {
			if _, err := node.EnforceBudget(ctx); err != nil {
				return cell, err
			}
		}
	}
	if _, err := node.EnforceBudget(ctx); err != nil {
		return cell, err
	}
	cell.FinalBytes = node.MetadataBytes()
	if cell.FinalBytes > budget {
		return cell, fmt.Errorf("final resident bytes %d over budget %d", cell.FinalBytes, budget)
	}

	// Spilled history must read back correctly on demand.
	txid, err := node.StartTransaction(ctx)
	if err != nil {
		return cell, err
	}
	for _, i := range []int{0, 1, commits - 1} {
		if _, err := node.Get(ctx, txid, fmt.Sprintf("c-%05d", i)); err != nil {
			return cell, fmt.Errorf("spilled key c-%05d unreadable: %w", i, err)
		}
	}
	if _, err := node.CommitTransaction(ctx, txid); err != nil {
		return cell, err
	}

	m := node.Metrics().Snapshot()
	cell.Spilled, cell.Shed, cell.RemoteFetches = m.SpilledRecords, m.BudgetShed, m.RemoteFetches
	if cell.Spilled == 0 {
		return cell, fmt.Errorf("no records spilled with the live set ~%dx the budget", 4)
	}
	return cell, nil
}

// anyOverBudget reports whether some live node's resident metadata
// currently exceeds budget (the next enforcement pass will do real work).
func anyOverBudget(c *cluster.Cluster, budget int64) bool {
	for _, n := range c.Nodes() {
		if n.MetadataBytes() > budget {
			return true
		}
	}
	return false
}

// runRecoveryCampaign is the durability campaign's shape with this PR's
// machinery switched on: the WAL checkpoints in the background, cluster
// nodes carry a metadata budget enforced at the maintenance cadence (one
// enforcement pass runs with a storage crash armed one operation ahead, so
// the crash lands inside the spill's probe), and node kills promote
// standbys through the incremental fault-manager-fed bootstrap. The
// checker then proves no acknowledged commit vanished.
func runRecoveryCampaign(opts Options, seed int64) (RecoveryCell, error) {
	ctx := context.Background()
	requests := opts.ChaosRequests
	if requests <= 0 {
		requests = 140
		if opts.Quick {
			requests = 40
		}
	}
	kills := opts.ChaosKills
	if kills <= 0 {
		kills = 1
	}
	const storageCrashes = 2
	// Tight enough that the workload's record churn overruns it between
	// enforcement passes (spills happen), loose enough that the sequential
	// runner never starves behind the shed ceiling waiting for a pass.
	const nodeBudget = 16 << 10
	cell := RecoveryCell{Scenario: "campaign", Seed: seed, Requests: requests}

	dir, cleanup, err := walDir()
	if err != nil {
		return cell, err
	}
	defer cleanup()
	wal, err := walengine.Open(dir, walengine.Options{
		SegmentBytes:        128 << 10,
		CompactGarbageBytes: 256 << 10,
		CheckpointEvery:     400,
	})
	if err != nil {
		return cell, err
	}
	defer wal.Close()

	errRate, partialRate, spikeRate := opts.chaosFaultRates()
	st := chaos.Wrap(wal, chaos.Config{
		Seed:        seed,
		ErrorRate:   errRate,
		PartialRate: partialRate,
		SpikeRate:   spikeRate,
		Spike:       20 * time.Millisecond,
		Sleeper:     opts.sleeper(),
	})

	c, err := cluster.New(cluster.Config{
		Nodes:    durNodes,
		Standbys: kills,
		Store:    st,
		Node: core.Config{
			EnableDataCache:     true,
			IDEntropySeed:       seed,
			MetadataBudgetBytes: nodeBudget,
		},
		Clock:                idgen.NewVirtualClock(chaosEpoch, 1),
		MulticastPeriod:      time.Hour,
		PruneMulticast:       true,
		IncrementalBootstrap: true,
	})
	if err != nil {
		return cell, err
	}
	if err := c.Start(ctx); err != nil {
		return cell, err
	}
	defer c.Stop()

	check := checker.New()
	runner := &chaos.Runner{
		Client:  c.Client(),
		Payload: workload.Payload(seed, opts.Payload),
		Check:   check,
	}
	seedRequests := 0
	for start := 0; start < durKeys; start += durSeedPer {
		var ops []workload.Op
		for i := start; i < start+durSeedPer && i < durKeys; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: workload.KeyName(i)})
		}
		if err := runner.Do(ctx, workload.Request{Funcs: [][]workload.Op{ops}}); err != nil {
			return cell, fmt.Errorf("seeding: %w", err)
		}
		seedRequests++
	}
	c.FlushMulticast()

	opsPerReq := st.Ops() / int64(seedRequests)
	gap := opsPerReq * int64(requests) / (storageCrashes + 2)
	if gap < 8 {
		gap = 8
	}
	plan := chaos.ScheduleStorageCrashes(st, wal, storageCrashes, gap)

	// enforceAll relieves every live node's budget; storage errors during
	// the spill probe (injected or crash-induced) are the next pass's
	// problem by design.
	enforceAll := func() int64 {
		var spilled int64
		for _, n := range c.Nodes() {
			s, _ := n.EnforceBudget(ctx)
			spilled += int64(s)
		}
		return spilled
	}
	// A shed request backs off and redoes; in a live deployment the
	// maintenance loop would be releasing memory meanwhile, so the
	// sequential harness runs that relief between redos.
	runner.OnRedo = func(ctx context.Context, err error) {
		if errors.Is(err, core.ErrOverloaded) {
			cell.Spilled += enforceAll()
		}
	}

	st.SetEnabled(true)
	sched := chaos.NewScheduler(c, seed, chaos.PlanKills(seed, kills, requests/5, 4*requests/5))
	gen := workload.NewGenerator(seed, workload.NewZipf(seed+100, durKeys, 1.0), 2, 2, 2)
	midSpillArmed := false
	for i := 0; i < requests; i++ {
		if err := runner.Do(ctx, gen.Next()); err != nil {
			return cell, fmt.Errorf("request %d: %w", i, err)
		}
		if err := plan.Err(); err != nil {
			return cell, err
		}
		if err := sched.Tick(ctx, i+1); err != nil {
			return cell, err
		}
		if (i+1)%5 == 0 {
			if !midSpillArmed && i+1 >= requests/2 && anyOverBudget(c, nodeBudget) {
				// One crash+reopen at enforcement's first storage operation
				// — the spill's probe BatchGet, since a node is over budget
				// right now and the passes before it touch only memory.
				midSpillArmed = true
				st.CrashAfter(1, func() {
					if err := wal.Crash(); err == nil {
						_ = wal.Reopen()
					}
				})
				cell.StorageCrashes++
			}
			cell.Spilled += enforceAll()
		}
		if (i+1)%durMaint == 0 {
			if err := chaosMaintenance(ctx, c); err != nil {
				return cell, err
			}
		}
	}

	// Quiesce: faults off, one final CLEAN restart of the engine — with
	// checkpoints enabled Close writes one, so the reopen replays only the
	// post-checkpoint tail — then recovery and the audit.
	st.SetEnabled(false)
	if err := wal.Close(); err != nil {
		return cell, err
	}
	if err := wal.Reopen(); err != nil {
		return cell, err
	}
	if err := chaosMaintenance(ctx, c); err != nil {
		return cell, err
	}
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		return cell, err
	}
	keys := make([]string, durKeys)
	for i := range keys {
		keys[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keys)
	if err != nil {
		return cell, err
	}
	verdict := check.Verdict(final)
	cell.Verdict = &verdict

	rm := runner.Metrics().Snapshot()
	cell.Committed = rm.Commits
	cell.Redos = rm.Redos
	cell.StorageCrashes += plan.Crashes()
	cell.Kills = sched.Kills()
	cell.Promotions = sched.Promotions()
	cell.InjectedErrors = st.FaultMetrics().Snapshot().Errors
	for _, n := range c.Nodes() {
		m := n.Metrics().Snapshot()
		cell.BootstrapSkipped += m.BootstrapSkipped
		cell.Shed += m.BudgetShed
	}
	w := wal.WAL().Snapshot()
	cell.Checkpoints = w.Checkpoints
	cell.CheckpointRestored = w.CheckpointRestored
	return cell, nil
}
