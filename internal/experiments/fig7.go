package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/core"
	"aft/internal/workload"
)

// nodeConcurrency models the shared-data-structure contention that caps a
// real AFT node near 40-45 concurrent clients (§6.5.1); see DESIGN.md.
const nodeConcurrency = 42

// Fig7 reproduces Figure 7 (§6.5.1): single-node throughput as the number
// of synchronous closed-loop clients grows from 1 to 50, over DynamoDB and
// Redis, with the moderately contended workload (Zipf 1.5).
//
// Expected shapes: linear scaling until ~40 clients, then a plateau; Redis
// sustains higher peak throughput than DynamoDB because its lower IO
// latency completes each closed-loop transaction faster.
func Fig7(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const keys = 1000
	const zipf = 1.5
	window := 1500 * time.Millisecond
	if opts.Quick {
		window = 400 * time.Millisecond
	}
	clientCounts := []int{1, 5, 10, 20, 30, 40, 45, 50}
	if opts.Quick {
		clientCounts = []int{1, 10, 40, 50}
	}

	table := Table{
		Title:  "Figure 7: single-node throughput vs clients (txn/s, paper-equivalent)",
		Header: []string{"store", "clients", "throughput"},
		Notes:  []string{fmt.Sprintf("node concurrency limit %d models §6.5.1 contention plateau", nodeConcurrency)},
	}

	for _, kind := range []storeKind{kindDynamo, kindRedis} {
		for _, clients := range clientCounts {
			store := opts.newStore(kind)
			node, err := core.NewNode(core.Config{
				NodeID:          "fig7",
				Store:           store,
				EnableDataCache: true,
				MaxConcurrent:   nodeConcurrency,
			})
			if err != nil {
				return table, err
			}
			reg := workload.NewRegistry()
			if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
				return table, err
			}
			platform, err := opts.newPlatform(node)
			if err != nil {
				return table, err
			}
			exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})

			gens := make([]*workload.Generator, clients)
			for c := range gens {
				gens[c] = workload.NewGenerator(opts.Seed+int64(c),
					workload.NewZipf(opts.Seed+int64(100+c), keys, zipf), 2, 1, 2)
			}
			count, elapsed, err := runForDuration(clients, window, func(client int) error {
				_, err := exec.Execute(ctx, gens[client].Next())
				return err
			})
			if err != nil {
				return table, fmt.Errorf("fig7 %s clients=%d: %w", kind, clients, err)
			}
			tps := opts.rescaleRate(float64(count) / elapsed.Seconds())
			table.Rows = append(table.Rows, []string{
				string(kind), fmt.Sprint(clients), fmt.Sprintf("%.0f", tps),
			})
		}
	}
	return table, nil
}
