package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/stats"
	"aft/internal/workload"
)

// Fig6 reproduces Figure 6 (§6.4): latency versus transaction length, from
// 1 function to 10 functions (each function does 1 write + 2 reads), for
// AFT over DynamoDB and Redis.
//
// Expected shapes: roughly linear growth with length for both engines;
// DynamoDB grows sub-linearly in total IOs because all writes batch into
// one call at commit (the paper reports 10-function transactions only
// ~6.2x slower than 1-function), while Redis pays one call per IO (~8.9x).
func Fig6(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.spin = true // few clients: precise sub-ms latency injection
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const clients = 10
	perClient := opts.scaled(200)
	const keys = 1000
	const zipf = 1.5

	table := Table{
		Title:  "Figure 6: transaction length, 1-10 functions x (1W+2R) (ms, paper-equivalent)",
		Header: []string{"store", "functions", "median", "p99"},
	}

	for _, kind := range []storeKind{kindDynamo, kindRedis} {
		for _, functions := range []int{1, 2, 4, 6, 8, 10} {
			store := opts.newStore(kind)
			node, err := newNode("fig6", store, false)
			if err != nil {
				return table, err
			}
			reg := workload.NewRegistry()
			if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
				return table, err
			}
			platform, err := opts.newPlatform(node)
			if err != nil {
				return table, err
			}
			exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})

			gens := make([]*workload.Generator, clients)
			for c := range gens {
				gens[c] = workload.NewGenerator(opts.Seed+int64(c),
					workload.NewZipf(opts.Seed+int64(100+c), keys, zipf), functions, 1, 2)
			}
			rec := stats.NewRecorder()
			_, err = runClients(clients, perClient, func(client, iter int) error {
				start := time.Now()
				if _, err := exec.Execute(ctx, gens[client].Next()); err != nil {
					return err
				}
				rec.Record(opts.rescale(time.Since(start)))
				return nil
			})
			if err != nil {
				return table, fmt.Errorf("fig6 %s len=%d: %w", kind, functions, err)
			}
			s := rec.Summarize()
			table.Rows = append(table.Rows, []string{
				string(kind), fmt.Sprint(functions), ms(s.Median), ms(s.P99),
			})
		}
	}
	return table, nil
}
