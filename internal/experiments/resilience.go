package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"time"

	"aft/aft"
	"aft/internal/chaos"
	"aft/internal/checker"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/stats"
	"aft/internal/wire"
	"aft/internal/workload"
)

// Resilience runs the network-level survival experiment: one AFT node
// behind a real TCP wire server, its listener wrapped in the seeded
// network fault injector. A sequential deterministic campaign drives the
// redo-until-commit workload through two blackhole partitions (one
// two-way, one outbound-only gray failure), scheduled mid-frame
// connection resets, delay spikes, and slow-drip conns, with the history
// checker auditing read atomicity throughout; dangling server-side
// transactions abandoned by timed-out clients are reclaimed by the
// expired-transaction reaper. An overload phase then demonstrates
// admission control: with every concurrency slot held and the waiting
// queue full, new arrivals shed with ErrOverloaded, and a 4x-concurrency
// closed-loop burst (retrying through the public backoff policy) must
// keep goodput close to the uncontended rate.
//
// Determinism: one driver goroutine issues every request; partitions
// auto-heal after a fixed number of accepted conns (each failed attempt
// redials exactly once); resets fire on the global write-frame clock; and
// per-conn decisions are hash-derived. Every cell field outside the
// `measured` sub-struct is bit-for-bit reproducible for a fixed seed and
// scale — wall-clock-dependent numbers (rates, p99, burst shed counts,
// read-frame delay spikes) are quarantined in `measured`.
func Resilience(opts Options) (Table, error) {
	cells, err := ResilienceCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ResilienceTable(cells)
}

// ResilienceCell is one seed's campaign result. Fields outside Measured
// are deterministic for a fixed seed and scale.
type ResilienceCell struct {
	Seed     int64 `json:"seed"`
	Requests int   `json:"requests"`
	Keys     int   `json:"keys"`

	Committed     int64 `json:"committed"`
	Redos         int64 `json:"redos"`
	CommitRetries int64 `json:"commit_retries"`

	Partitions      int64 `json:"partitions"`
	Heals           int64 `json:"heals"`
	BlackholedConns int64 `json:"blackholed_conns"`
	ConnResets      int64 `json:"conn_resets"`
	SwallowedWrites int64 `json:"swallowed_writes"`
	DrippedConns    int64 `json:"dripped_conns"`
	Conns           int64 `json:"conns"`

	Shed   int64 `json:"overload_shed"`
	Reaped int64 `json:"reaped_expired"`

	LeakedGoroutines int `json:"leaked_goroutines"`

	Verdict checker.Verdict `json:"verdict"`

	// Measured holds the wall-clock-dependent numbers; they vary run to
	// run and are excluded from the determinism contract.
	Measured ResilienceMeasured `json:"measured"`
}

// ResilienceMeasured is the non-deterministic part of a cell.
type ResilienceMeasured struct {
	DelaySpikes   int64   `json:"delay_spikes"`
	BaselineTPS   float64 `json:"baseline_tps"`
	OverloadTPS   float64 `json:"overload_goodput_tps"`
	GoodputRatio  float64 `json:"goodput_ratio"`
	P99Millis     float64 `json:"p99_ms"`
	BurstShed     int64   `json:"burst_shed"`
	BurstDeadline int64   `json:"burst_deadline_exceeded"`
}

// ResilienceTable renders measured cells as the experiment's table.
func ResilienceTable(cells []ResilienceCell) (Table, error) {
	table := Table{
		Title: "Resilience: partitions, resets, overload — deadline+retry survival",
		Header: []string{"seed", "requests", "committed", "redos", "partitions",
			"resets", "swallowed", "dripped", "shed", "reaped", "goro leak",
			"goodput ratio", "p99 ms", "anomalies", "verdict"},
		Notes: []string{
			"network faults: one two-way and one outbound (gray) blackhole partition, mid-frame conn resets, delay spikes, slow-drip conns",
			"shed: arrivals fast-failed with ErrOverloaded while all slots were held and the admission queue was full",
			"reaped: dangling transactions abandoned by timed-out clients, reclaimed past their propagated deadline",
			"goodput ratio: committed rate under a 4x-concurrency closed-loop burst vs the uncontended rate (retry with jittered backoff)",
		},
	}
	for _, c := range cells {
		verdict := "CLEAN"
		if !c.Verdict.Clean() {
			verdict = "ANOMALOUS"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(c.Seed), fmt.Sprint(c.Requests), fmt.Sprint(c.Committed),
			fmt.Sprint(c.Redos), fmt.Sprint(c.Partitions), fmt.Sprint(c.ConnResets),
			fmt.Sprint(c.SwallowedWrites), fmt.Sprint(c.DrippedConns),
			fmt.Sprint(c.Shed), fmt.Sprint(c.Reaped), fmt.Sprint(c.LeakedGoroutines),
			fmt.Sprintf("%.2f", c.Measured.GoodputRatio),
			fmt.Sprintf("%.1f", c.Measured.P99Millis),
			fmt.Sprint(c.Verdict.Anomalies()), verdict,
		})
	}
	return table, nil
}

// ResilienceCells runs one campaign per seed (opts.Seed, +1, +2).
func ResilienceCells(opts Options) ([]ResilienceCell, error) {
	opts = opts.withDefaults()
	var cells []ResilienceCell
	for i := int64(0); i < 3; i++ {
		cell, err := runResilienceCell(opts, opts.Seed+i)
		if err != nil {
			return cells, fmt.Errorf("resilience seed %d: %w", opts.Seed+i, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// resilience campaign shape.
const (
	resilienceKeys          = 64
	resilienceSeedPer       = 16 // keys seeded per bootstrap transaction
	resilienceMaintain      = 20 // requests between maintenance points
	resilienceMaxConcurrent = 8  // node concurrency slots
	resilienceQueue         = 8  // admission waiting-queue bound
	resilienceHealAccepts   = 3  // partition auto-heal budget (failed redials)
	resilienceEpoch         = int64(1) << 50
	// resilienceOpTimeout is the client's per-op deadline: short enough
	// that a partition window costs ~healAccepts timeouts, long enough
	// that no healthy op ever trips it. The margin must absorb scheduler
	// stall on a loaded box, not just the injected delays (≤ ~20ms at
	// default scale) — a spurious timeout would perturb the locked redo
	// count. Partition-window redo counts don't depend on this value:
	// they are set by the accept-heal budget, and an abandoned op's
	// lease is its own deadline, so it is always expired by the time the
	// next attempt's admission path runs the reaper. Quick campaigns run
	// with a virtual sleeper (no real injected delay at all), so a
	// smaller stall margin keeps the CI path fast.
	resilienceOpTimeout      = time.Second
	resilienceOpTimeoutQuick = 300 * time.Millisecond
)

// runResilienceCell runs one seed's campaign, bracketing it with a
// goroutine census: everything the cell starts must be gone when it ends.
func runResilienceCell(opts Options, seed int64) (ResilienceCell, error) {
	before := runtime.NumGoroutine()
	cell, err := resilienceCampaign(opts, seed)
	if err != nil {
		return cell, err
	}
	// Let conn handlers and burst workers finish dying before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if leaked := runtime.NumGoroutine() - before; leaked > 0 {
		cell.LeakedGoroutines = leaked
	}
	return cell, nil
}

func resilienceCampaign(opts Options, seed int64) (ResilienceCell, error) {
	ctx := context.Background()
	requests := 120
	if opts.Quick {
		requests = 40
	}
	cell := ResilienceCell{Seed: seed, Requests: requests, Keys: resilienceKeys}

	// The node under test: bounded concurrency, a bounded admission
	// queue, and fully deterministic transaction IDs.
	st := opts.newStore(kindDynamo)
	defer func() {
		if cl, ok := st.(io.Closer); ok {
			cl.Close()
		}
	}()
	node, err := core.NewNode(core.Config{
		NodeID:           "resilience-0",
		Store:            st,
		EnableDataCache:  true,
		DataCacheEntries: 16384,
		IDEntropySeed:    seed,
		Clock:            idgen.NewVirtualClock(resilienceEpoch, 1),
		MaxConcurrent:    resilienceMaxConcurrent,
		AdmissionQueue:   resilienceQueue,
	})
	if err != nil {
		return cell, err
	}

	// The wire server listens through the network fault injector; the
	// client's short OpTimeout turns every injected hang into a retriable
	// deadline error (and rides the wire so the server abandons the work).
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	nc := chaos.WrapListener(raw, chaos.NetConfig{
		Seed:         seed,
		DelayRate:    0.02,
		Delay:        5 * time.Millisecond,
		SlowDripRate: 0.15,
		Sleeper:      opts.sleeper(),
	})
	srv := wire.NewServer(node)
	addr := srv.Serve(nc)
	defer srv.Close()

	opTimeout := resilienceOpTimeout
	if opts.Quick {
		opTimeout = resilienceOpTimeoutQuick
	}
	client, err := wire.DialWith(addr.String(), wire.DialConfig{
		MaxConns:    4,
		OpTimeout:   opTimeout,
		DialTimeout: opTimeout,
	})
	if err != nil {
		return cell, err
	}
	defer client.Close()

	check := checker.New()
	runner := &chaos.Runner{
		Client:  client,
		Payload: workload.Payload(seed, opts.Payload),
		Check:   check,
	}

	// Seed every key clean, so reads always find a committed version.
	for start := 0; start < resilienceKeys; start += resilienceSeedPer {
		var ops []workload.Op
		for i := start; i < start+resilienceSeedPer && i < resilienceKeys; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: workload.KeyName(i)})
		}
		if err := runner.Do(ctx, workload.Request{Funcs: [][]workload.Op{ops}}); err != nil {
			return cell, fmt.Errorf("seeding: %w", err)
		}
	}

	// The deterministic campaign: faults fire at fixed request indices.
	// The Both partition drops everything; the Outbound partition is the
	// gray failure (the node does the work, every ack is lost); the three
	// resets each cut the next response frame in half.
	gen := workload.NewGenerator(seed, workload.NewZipf(seed+100, resilienceKeys, 1.0), 2, 2, 2)
	for i := 0; i < requests; i++ {
		if err := runner.Do(ctx, gen.Next()); err != nil {
			return cell, fmt.Errorf("request %d: %w", i, err)
		}
		switch n := i + 1; n {
		case requests / 4:
			nc.SetPartition(chaos.PartitionBoth, resilienceHealAccepts)
		case requests / 3, requests / 2, 2 * requests / 3:
			nc.ResetAfterWrites(1)
		case 3 * requests / 4:
			nc.SetPartition(chaos.PartitionOutbound, resilienceHealAccepts)
		}
		if (i+1)%resilienceMaintain == 0 {
			node.SweepLocalMetadata(0)
			node.ReapExpired(ctx, 0)
		}
	}
	if p := nc.PendingResets(); p != 0 {
		return cell, fmt.Errorf("%d scheduled resets never fired", p)
	}

	// Quiesce: every transaction abandoned by a timed-out client (its
	// Start executed server-side but the ack was lost) must be reclaimed
	// by the reaper once its propagated deadline passes — the node ends
	// the campaign with zero in-flight transactions.
	nc.SetPartition(chaos.PartitionNone, 0)
	quiesceBy := time.Now().Add(5 * time.Second)
	for node.ActiveTransactions() > 0 {
		node.ReapExpired(ctx, 0)
		if time.Now().After(quiesceBy) {
			return cell, fmt.Errorf("%d transactions never quiesced", node.ActiveTransactions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cell.Reaped = node.Metrics().Snapshot().ReapedExpired

	// Audit: settle indeterminate commits against storage ground truth,
	// then replay the observed history plus a final-state read.
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		return cell, err
	}
	keys := make([]string, resilienceKeys)
	for i := range keys {
		keys[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keys)
	if err != nil {
		return cell, err
	}
	cell.Verdict = check.Verdict(final)

	rm := runner.Metrics().Snapshot()
	cell.Committed = rm.Commits
	cell.Redos = rm.Redos
	cell.CommitRetries = rm.CommitRetries
	nm := nc.NetFaultMetrics().Snapshot()
	cell.Partitions = nm.Partitions
	cell.Heals = nm.Heals
	cell.BlackholedConns = nm.BlackholedConns
	cell.ConnResets = nm.Resets
	cell.SwallowedWrites = nm.SwallowedWrites
	cell.DrippedConns = nm.DrippedConns
	cell.Conns = nm.Conns
	cell.Measured.DelaySpikes = nm.Delays

	// Overload phase, on a second fault-free listener against the same
	// node: first the deterministic shed demonstration, then the measured
	// 4x-concurrency burst.
	if err := resilienceOverload(ctx, opts, seed, node, &cell); err != nil {
		return cell, err
	}

	// Graceful teardown exercises the drain path: all transactions are
	// settled, so Shutdown returns without forcing.
	client.Close()
	shutCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return cell, fmt.Errorf("shutdown: %w", err)
	}
	return cell, nil
}

// resilienceOverload runs the admission-control phase against node via a
// plain (fault-free) wire listener.
func resilienceOverload(ctx context.Context, opts Options, seed int64, node *core.Node, cell *ResilienceCell) error {
	srv := wire.NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	oc, err := wire.DialWith(addr.String(), wire.DialConfig{
		MaxConns: 4 * resilienceMaxConcurrent, OpTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	defer oc.Close()

	// Deterministic shed demonstration: hold every concurrency slot, park
	// a full admission queue behind them, then count exactly queue-many
	// fast-fail ErrOverloaded rejections.
	shed0 := node.Metrics().Snapshot().OverloadShed
	holds := make([]string, 0, resilienceMaxConcurrent)
	for i := 0; i < resilienceMaxConcurrent; i++ {
		txid, err := oc.StartTransaction(ctx)
		if err != nil {
			return fmt.Errorf("overload hold %d: %w", i, err)
		}
		holds = append(holds, txid)
	}
	type parked struct {
		txid string
		err  error
	}
	parkedCh := make(chan parked, resilienceQueue)
	for i := 0; i < resilienceQueue; i++ {
		go func() {
			txid, err := oc.StartTransaction(ctx)
			parkedCh <- parked{txid, err}
		}()
	}
	waitBy := time.Now().Add(2 * time.Second)
	for node.AdmissionWaiting() < resilienceQueue {
		if time.Now().After(waitBy) {
			return fmt.Errorf("admission queue never filled (waiting=%d)", node.AdmissionWaiting())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < resilienceQueue; i++ {
		txid, err := oc.StartTransaction(ctx)
		switch {
		case errors.Is(err, core.ErrOverloaded):
			cell.Shed++
		case err == nil:
			oc.AbortTransaction(ctx, txid)
		default:
			return fmt.Errorf("overflow start %d: %w", i, err)
		}
	}
	if got := node.Metrics().Snapshot().OverloadShed - shed0; got != cell.Shed {
		return fmt.Errorf("shed metric %d != observed rejections %d", got, cell.Shed)
	}
	if cell.Shed != resilienceQueue {
		return fmt.Errorf("shed %d arrivals, want %d (slots and queue all held)", cell.Shed, resilienceQueue)
	}
	for _, txid := range holds {
		if err := oc.AbortTransaction(ctx, txid); err != nil {
			return fmt.Errorf("releasing hold: %w", err)
		}
	}
	for i := 0; i < resilienceQueue; i++ {
		p := <-parkedCh
		if p.err != nil {
			return fmt.Errorf("parked start: %w", p.err)
		}
		if err := oc.AbortTransaction(ctx, p.txid); err != nil {
			return fmt.Errorf("releasing parked: %w", err)
		}
	}

	// Measured burst: closed-loop committed throughput at the node's
	// concurrency (baseline) vs 4x that offered load, every worker
	// retrying through the public jittered-backoff policy. Overloaded
	// arrivals shed and back off; goodput must hold.
	dur := 600 * time.Millisecond
	if opts.Quick {
		dur = 250 * time.Millisecond
	}
	payload := workload.Payload(seed, opts.Payload)
	// The cap is a balance: shed workers backing off too briefly steal
	// CPU and admission bandwidth from the workers doing useful work;
	// backing off too long lets the whole population collapse into sleep
	// at once, draining the queue and idling the node between arrivals.
	// 64ms keeps a shed worker retrying a few times per window while
	// leaving the slots-plus-queue population to run at full speed.
	policy := aft.RetryPolicy{
		MaxAttempts: 1000,
		BackoffBase: 4 * time.Millisecond,
		BackoffCap:  64 * time.Millisecond,
		BackoffSeed: seed,
	}
	run := func(clients int) (float64, *stats.Recorder, error) {
		rec := stats.NewRecorder()
		count, elapsed, err := runForDuration(clients, dur, func(c int) error {
			start := time.Now()
			err := aft.RunTransactionPolicy(ctx, oc, policy, func(t *aft.Txn) error {
				return t.Put(workload.KeyName(c%resilienceKeys), payload)
			})
			if err != nil {
				return err
			}
			rec.Record(time.Since(start))
			return nil
		})
		if err != nil {
			return 0, nil, err
		}
		return float64(count) / elapsed.Seconds(), rec, nil
	}
	// Baseline and burst run as interleaved pairs, and the reported ratio
	// is the median of the per-pair ratios: short closed-loop windows on
	// a shared machine are noisy (GC, scheduler), and any monotone drift
	// — the box slowing down over the run — would otherwise bias against
	// whichever phase runs second. Inside a pair the two windows are
	// adjacent, so drift cancels out of the ratio.
	windows := 3
	if opts.Quick {
		windows = 1
	}
	// A discarded warmup settles connection setup, allocator, and branch
	// state so baseline and burst windows measure the same steady state.
	if _, _, err := run(resilienceMaxConcurrent); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	type pair struct {
		base, burst float64
		ratio       float64
		rec         *stats.Recorder
	}
	m0 := node.Metrics().Snapshot()
	pairs := make([]pair, 0, windows)
	for i := 0; i < windows; i++ {
		base, _, err := run(resilienceMaxConcurrent)
		if err != nil {
			return fmt.Errorf("baseline window %d: %w", i, err)
		}
		burst, rec, err := run(4 * resilienceMaxConcurrent)
		if err != nil {
			return fmt.Errorf("burst window %d: %w", i, err)
		}
		r := 0.0
		if base > 0 {
			r = burst / base
		}
		pairs = append(pairs, pair{base, burst, r, rec})
	}
	m1 := node.Metrics().Snapshot()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ratio < pairs[j].ratio })
	mid := pairs[len(pairs)/2]
	baseline, goodput, rec := mid.base, mid.burst, mid.rec
	cell.Measured.BaselineTPS = opts.rescaleRate(baseline)
	cell.Measured.OverloadTPS = opts.rescaleRate(goodput)
	if baseline > 0 {
		cell.Measured.GoodputRatio = goodput / baseline
	}
	cell.Measured.P99Millis = stats.Millis(opts.rescale(rec.Summarize().P99))
	cell.Measured.BurstShed = m1.OverloadShed - m0.OverloadShed
	cell.Measured.BurstDeadline = m1.DeadlineExceeded - m0.DeadlineExceeded

	oc.Close()
	shutCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
