package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/latency"
	"aft/internal/stats"
	"aft/internal/storage"
	"aft/internal/workload"
)

// Fig2 reproduces Figure 2 (§6.1.1): median and p99 latency of performing
// 1, 5, and 10 writes from a single client, in four configurations — AFT
// with sequential client calls, AFT with one batched client call, and
// DynamoDB directly with sequential and batched writes.
//
// The client runs in a VM (no FaaS overhead), but AFT is a separate
// service, so every client→AFT call pays an RPC cost; DynamoDB calls pay
// their own modeled latency. The paper's two findings must reproduce:
// AFT's automatic commit-time batching beats sequential DynamoDB writes,
// and AFT-batch trails DynamoDB-batch by a small fixed overhead (the
// commit record plus one RPC).
func Fig2(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.spin = true // few clients: precise sub-ms latency injection
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	reps := opts.scaled(1000)

	// Client→AFT RPC cost: sub-millisecond same-AZ round trip.
	var rpcModel *latency.Model
	if opts.Scale > 0 {
		rpcModel = latency.NewModel(latency.Profile{
			latency.OpPut: {Median: 800 * time.Microsecond, Sigma: 0.3, TailProb: 0.01, TailFactor: 5},
		}, opts.Seed+7)
	}
	sleeper := opts.sleeper()
	rpc := func() {
		sleeper.Sleep(rpcModel.Sample(latency.OpPut, 1))
	}

	table := Table{
		Title:  "Figure 2: IO latency, single client, 1/5/10 writes (ms, paper-equivalent)",
		Header: []string{"writes", "config", "median", "p99"},
		Notes: []string{
			"AFT Sequential pays one RPC per write; AFT Batch ships all writes in one RPC;",
			"both commit with DynamoDB batch writes plus one commit record (§3.3).",
		},
	}

	for _, writes := range []int{1, 5, 10} {
		keys := make([]string, writes)
		for i := range keys {
			keys[i] = workload.KeyName(i)
		}

		type config struct {
			name string
			run  func() error
		}
		store := opts.newStore(kindDynamo)
		node, err := newNode("fig2", store, false)
		if err != nil {
			return table, err
		}
		configs := []config{
			{"AFT Sequential", func() error {
				txid, err := node.StartTransaction(ctx)
				if err != nil {
					return err
				}
				for _, k := range keys {
					rpc() // one client→AFT round trip per write
					if err := node.Put(ctx, txid, k, payload); err != nil {
						return err
					}
				}
				rpc() // commit round trip
				_, err = node.CommitTransaction(ctx, txid)
				return err
			}},
			{"AFT Batch", func() error {
				txid, err := node.StartTransaction(ctx)
				if err != nil {
					return err
				}
				rpc() // all writes in a single client→AFT request
				for _, k := range keys {
					if err := node.Put(ctx, txid, k, payload); err != nil {
						return err
					}
				}
				_, err = node.CommitTransaction(ctx, txid)
				return err
			}},
			{"DynamoDB Sequential", func() error {
				for _, k := range keys {
					if err := store.Put(ctx, k, payload); err != nil {
						return err
					}
				}
				return nil
			}},
			{"DynamoDB Batch", func() error {
				items := make(map[string][]byte, len(keys))
				for _, k := range keys {
					items[k] = payload
				}
				return batchAll(ctx, store, items)
			}},
		}
		for _, cfg := range configs {
			rec := stats.NewRecorder()
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := cfg.run(); err != nil {
					return table, fmt.Errorf("fig2 %s: %w", cfg.name, err)
				}
				rec.Record(opts.rescale(time.Since(start)))
			}
			s := rec.Summarize()
			table.Rows = append(table.Rows, []string{
				fmt.Sprint(writes), cfg.name, ms(s.Median), ms(s.P99),
			})
		}
	}
	return table, nil
}

// batchAll issues BatchPut in engine-limit chunks.
func batchAll(ctx context.Context, store storage.Store, items map[string][]byte) error {
	limit := store.Capabilities().MaxBatchSize
	if limit <= 0 {
		limit = len(items)
	}
	batch := make(map[string][]byte, limit)
	for k, v := range items {
		batch[k] = v
		if len(batch) >= limit {
			if err := store.BatchPut(ctx, batch); err != nil {
				return err
			}
			batch = make(map[string][]byte, limit)
		}
	}
	if len(batch) > 0 {
		return store.BatchPut(ctx, batch)
	}
	return nil
}
