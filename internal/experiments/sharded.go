package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/stats"
	"aft/internal/workload"
)

// Sharded compares the paper's symmetric broadcast exchange (§4.1) against
// the shard-scoped exchange of internal/shard at 2/4/8/16 nodes, under a
// uniform single-write workload with shard-affinity routing. It is the
// scaling experiment the paper defers to future work (§8): per-node
// commit-index size and multicast fan-out should track a node's share of
// the keyspace in sharded mode, versus global write volume in broadcast
// mode.
//
// Expected shape: broadcast mode's mean per-node commit-index size equals
// total committed transactions regardless of node count, while sharded
// mode's shrinks roughly as 1/N (at 8 nodes the acceptance bar is <=
// 0.5x); record x peer deliveries drop by a similar factor; throughput and
// latency stay comparable (the exchange is off the critical path).
func Sharded(opts Options) (Table, error) {
	cells, err := ShardedCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ShardedTable(cells)
}

// ShardedTable renders measured cells as the experiment's table.
func ShardedTable(cells []ShardedCell) (Table, error) {
	table := Table{
		Title: "Sharded vs broadcast metadata exchange (uniform writes)",
		Header: []string{"mode", "nodes", "throughput", "p50 ms", "p99 ms",
			"mean index", "index share", "deliveries"},
		Notes: []string{
			"mean index: mean per-node commit-index size after the final multicast round",
			"index share: mean index / committed txns (~1.0 broadcast, ~1/N sharded)",
			"deliveries: record x peer multicast deliveries (0 sharded = affinity routed every write to its owner)",
		},
	}

	for _, r := range cells {
		mode := "broadcast"
		if r.Sharded {
			mode = "sharded"
		}
		table.Rows = append(table.Rows, []string{
			mode, fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.2f", stats.Millis(r.Latency.Median)),
			fmt.Sprintf("%.2f", stats.Millis(r.Latency.P99)),
			fmt.Sprintf("%.1f", r.MeanIndex),
			fmt.Sprintf("%.2f", r.IndexShare()),
			fmt.Sprint(r.Deliveries),
		})
	}
	return table, nil
}

// ShardedCell is one (mode, nodes) measurement, exposed for the bench
// harness's machine-readable output.
type ShardedCell struct {
	Sharded    bool
	Nodes      int
	Throughput float64 // txn/s, paper-equivalent
	Latency    stats.Summary
	Committed  int64   // total transactions committed in the window
	MeanIndex  float64 // mean per-node commit-index size
	Deliveries int64   // record x peer multicast deliveries
}

// IndexShare is the mean per-node commit-index size normalized by total
// committed transactions: ~1.0 in broadcast mode (every node caches every
// record), ~1/N plus the committer's share in sharded mode.
func (c ShardedCell) IndexShare() float64 {
	if c.Committed == 0 {
		return 0
	}
	return c.MeanIndex / float64(c.Committed)
}

// runShardedCell measures one cluster configuration.
func runShardedCell(ctx context.Context, opts Options, nodes int, sharded bool,
	clientsPerNode int, window time.Duration, keys int, payload []byte) (ShardedCell, error) {
	cell := ShardedCell{Sharded: sharded, Nodes: nodes}
	c, err := cluster.New(cluster.Config{
		Nodes:   nodes,
		Sharded: sharded,
		Store:   opts.newStore(kindDynamo),
		Node: core.Config{
			EnableDataCache: true,
			MaxConcurrent:   nodeConcurrency,
		},
		MulticastPeriod: opts.multicastPeriod(),
		PruneMulticast:  true,
	})
	if err != nil {
		return cell, err
	}
	if err := c.Start(ctx); err != nil {
		return cell, err
	}
	defer c.Stop()

	client := c.Client()
	rec := stats.NewRecorder()
	clients := clientsPerNode * nodes
	rngs := make([]*rand.Rand, clients)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(opts.Seed + int64(i)))
	}
	count, elapsed, err := runForDuration(clients, window, func(cl int) error {
		key := workload.KeyName(rngs[cl].Intn(keys))
		start := time.Now()
		// First-key-hinted start: shard-affinity routing in sharded
		// mode, plain round-robin otherwise.
		txid, err := client.StartTransactionHint(ctx, key)
		if err != nil {
			return err
		}
		if err := client.Put(ctx, txid, key, payload); err != nil {
			return err
		}
		if _, err := client.CommitTransaction(ctx, txid); err != nil {
			return err
		}
		rec.Record(time.Since(start))
		return nil
	})
	if err != nil {
		return cell, err
	}
	c.FlushMulticast()

	cell.Throughput = opts.rescaleRate(float64(count) / elapsed.Seconds())
	sum := rec.Summarize()
	sum.Median = opts.rescale(sum.Median)
	sum.P95 = opts.rescale(sum.P95)
	sum.P99 = opts.rescale(sum.P99)
	sum.Mean = opts.rescale(sum.Mean)
	sum.Min = opts.rescale(sum.Min)
	sum.Max = opts.rescale(sum.Max)
	cell.Latency = sum
	cell.Committed = c.TotalCommitted()
	cell.MeanIndex = c.MeanMetadataSize()
	cell.Deliveries = c.Bus().Metrics().Snapshot().Deliveries
	return cell, nil
}

// ShardedCells runs the sharded experiment and returns the raw cells (the
// bench harness serializes them to BENCH_sharded.json).
func ShardedCells(opts Options) ([]ShardedCell, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const keys = 4096
	window := 800 * time.Millisecond
	nodeCounts := []int{2, 4, 8, 16}
	if opts.Quick {
		window = 200 * time.Millisecond
		nodeCounts = []int{2, 4, 8}
	}
	var cells []ShardedCell
	for _, sharded := range []bool{false, true} {
		for _, nodes := range nodeCounts {
			cell, err := runShardedCell(ctx, opts, nodes, sharded, 10, window, keys, payload)
			if err != nil {
				return cells, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}
