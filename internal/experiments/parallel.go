package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"aft/internal/core"
	"aft/internal/stats"
	"aft/internal/storage"
	"aft/internal/workload"
)

// Parallel measures intra-node scaling: the same contended workloads run
// against a node in its pre-striping configuration (one metadata lock, no
// group commit — the "baseline" the parallel benchmarks compare against),
// in the striped configuration with unthrottled flushers, and in the
// batching-biased "economy" configuration (see parallelConfigs). It is
// the single-node counterpart of the sharded experiment: sharding scales
// metadata ACROSS nodes, striping scales it WITHIN one.
//
// Expected shape: on a multi-core host (GOMAXPROCS >= 8) the striped
// configuration sustains >= 2.5x the baseline's commit throughput on the
// contended commit workload, and the storage metrics show commits
// coalescing (well above 1 item per BatchPut); on a single core the
// throughput ratio collapses toward 1.0 — the stripes have no parallelism
// to expose — while the coalescing evidence (items/batch, commits/flush,
// fewer engine calls per commit) still holds. Every cell records NumCPU
// and GOMAXPROCS so results are interpretable across hosts.
func Parallel(opts Options) (Table, error) {
	cells, err := ParallelCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ParallelTable(cells)
}

// ParallelCell is one (workload, config) measurement, exposed for the
// bench harness's machine-readable output.
type ParallelCell struct {
	Workload   string  // "commit" | "read" | "mixed"
	Config     string  // "baseline" | "striped" | "economy" (see parallelConfigs)
	Workers    int     // concurrent closed-loop clients
	GOMAXPROCS int     // procs during the run
	NumCPU     int     // host CPUs (scaling is bounded by this)
	Throughput float64 // txn/s, paper-equivalent
	Latency    stats.Summary
	Committed  int64
	// Storage-side coalescing evidence for the group-commit pipeline.
	Batches       int64
	BatchItems    int64
	ItemsPerBatch float64
	CallsPerTxn   float64 // engine round trips per committed transaction
	// Node-side pipeline counters.
	GroupFlushes    int64
	GroupedCommits  int64
	CommitsPerFlush float64
}

// Speedup returns cell throughput over base throughput (0 if base is 0).
func (c ParallelCell) Speedup(base ParallelCell) float64 {
	if base.Throughput == 0 {
		return 0
	}
	return c.Throughput / base.Throughput
}

// ParallelTable renders measured cells, pairing each striped cell with its
// baseline for the speedup column.
func ParallelTable(cells []ParallelCell) (Table, error) {
	table := Table{
		Title: "Parallel node: striped metadata + group commit vs global-lock baseline",
		Header: []string{"workload", "config", "workers", "throughput", "p50 ms",
			"p99 ms", "speedup", "items/batch", "commits/flush", "calls/txn"},
		Notes: []string{
			"baseline: MetadataStripes=1 + DisableGroupCommit (the pre-striping node)",
			"striped: 64 stripes, group-commit flushers = workers (storage parallelism matches baseline)",
			"economy: 64 stripes, default flusher bound — coalesced batches cut engine calls per txn",
			"speedup: config throughput / baseline throughput, same workload and workers",
			"speedup is hardware-bound: expect >= 2.5x for striped commit at GOMAXPROCS >= 8, ~1.0x on one core",
			"items/batch > 1 and commits/flush > 1 show concurrent commits coalescing into shared BatchPuts",
		},
	}
	base := make(map[string]ParallelCell)
	for _, c := range cells {
		if c.Config == "baseline" {
			base[c.Workload] = c
		}
	}
	for _, c := range cells {
		speedup := "-"
		if c.Config != "baseline" {
			speedup = fmt.Sprintf("%.2fx", c.Speedup(base[c.Workload]))
		}
		table.Rows = append(table.Rows, []string{
			c.Workload, c.Config, fmt.Sprint(c.Workers),
			fmt.Sprintf("%.0f", c.Throughput),
			fmt.Sprintf("%.2f", stats.Millis(c.Latency.Median)),
			fmt.Sprintf("%.2f", stats.Millis(c.Latency.P99)),
			speedup,
			fmt.Sprintf("%.1f", c.ItemsPerBatch),
			fmt.Sprintf("%.1f", c.CommitsPerFlush),
			fmt.Sprintf("%.1f", c.CallsPerTxn),
		})
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("run at GOMAXPROCS=%d on %d CPUs", runtime.GOMAXPROCS(0), runtime.NumCPU()))
	return table, nil
}

// parallelConfigs are the node configurations the experiment compares:
// the pre-striping baseline; the striped core with group commit allowed
// as many concurrent flushes as there are clients (so storage parallelism
// matches the baseline and the speedup isolates the metadata core); and
// the economy profile, where the default flusher bound trades some
// latency-bound throughput for coalesced batch round trips (the
// §6.3/§6.4 API-call metric).
func parallelConfigs(workers int) []struct {
	name string
	cfg  core.Config
} {
	return []struct {
		name string
		cfg  core.Config
	}{
		{"baseline", core.Config{MetadataStripes: 1, DisableGroupCommit: true}},
		{"striped", core.Config{GroupCommitFlushers: workers}},
		{"economy", core.Config{}},
	}
}

// ParallelCells runs the parallel experiment and returns the raw cells
// (the bench harness serializes them to BENCH_parallel.json).
func ParallelCells(opts Options) ([]ParallelCell, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	// Enough closed-loop clients that commits genuinely contend: well
	// above the group committer's flusher count, so queues form and
	// batches fill even on engines with real latency.
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 64 {
		workers = 64
	}
	window := 900 * time.Millisecond
	if opts.Quick {
		window = 250 * time.Millisecond
	}
	const hotKeys = 8
	const poolKeys = 1024
	const readKeys = 256

	var cells []ParallelCell
	for _, workloadName := range []string{"commit", "read", "mixed"} {
		for _, cfg := range parallelConfigs(workers) {
			cell, err := runParallelCell(ctx, opts, workloadName, cfg.name, cfg.cfg,
				workers, window, payload, hotKeys, poolKeys, readKeys)
			if err != nil {
				return cells, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// runParallelCell measures one (workload, config) cell on a fresh node.
func runParallelCell(ctx context.Context, opts Options, workloadName, cfgName string,
	cfg core.Config, workers int, window time.Duration, payload []byte,
	hotKeys, poolKeys, readKeys int) (ParallelCell, error) {
	cell := ParallelCell{
		Workload:   workloadName,
		Config:     cfgName,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	store := opts.newStore(kindDynamo)
	cfg.NodeID = "parallel-" + cfgName
	cfg.Store = store
	cfg.EnableDataCache = true
	cfg.DataCacheEntries = 16384
	node, err := core.NewNode(cfg)
	if err != nil {
		return cell, err
	}
	// Seed the read keyspace outside the measurement window.
	for i := 0; i < readKeys; i++ {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return cell, err
		}
		if err := node.Put(ctx, txid, workload.KeyName(i), payload); err != nil {
			return cell, err
		}
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			return cell, err
		}
	}
	type metered interface{ Metrics() *storage.Metrics }
	sm, ok := store.(metered)
	if !ok {
		return cell, fmt.Errorf("store %s exposes no metrics", store.Name())
	}
	storeBefore := sm.Metrics().Snapshot()
	nodeBefore := node.Metrics().Snapshot()

	rec := stats.NewRecorder()
	rngs := make([]*rand.Rand, workers)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(opts.Seed + int64(i)))
	}
	txn := func(cl int) error {
		rng := rngs[cl]
		start := time.Now()
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return err
		}
		switch workloadName {
		case "commit":
			if err := node.Put(ctx, txid, workload.KeyName(rng.Intn(hotKeys)), payload); err != nil {
				return err
			}
			if err := node.Put(ctx, txid, fmt.Sprintf("w-%d", rng.Intn(poolKeys)), payload); err != nil {
				return err
			}
		case "read":
			for j := 0; j < 3; j++ {
				if _, err := node.Get(ctx, txid, workload.KeyName(rng.Intn(readKeys))); err != nil {
					return err
				}
			}
		case "mixed":
			for j := 0; j < 2; j++ {
				if _, err := node.Get(ctx, txid, workload.KeyName(rng.Intn(readKeys))); err != nil {
					return err
				}
			}
			if err := node.Put(ctx, txid, workload.KeyName(rng.Intn(hotKeys)), payload); err != nil {
				return err
			}
		}
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			return err
		}
		rec.Record(time.Since(start))
		return nil
	}
	count, elapsed, err := runForDuration(workers, window, txn)
	if err != nil {
		return cell, err
	}

	cell.Throughput = opts.rescaleRate(float64(count) / elapsed.Seconds())
	sum := rec.Summarize()
	sum.Median = opts.rescale(sum.Median)
	sum.P95 = opts.rescale(sum.P95)
	sum.P99 = opts.rescale(sum.P99)
	sum.Mean = opts.rescale(sum.Mean)
	sum.Min = opts.rescale(sum.Min)
	sum.Max = opts.rescale(sum.Max)
	cell.Latency = sum

	sdiff := sm.Metrics().Snapshot().Sub(storeBefore)
	nodeAfter := node.Metrics().Snapshot()
	cell.Committed = nodeAfter.Committed - nodeBefore.Committed
	cell.Batches = sdiff.Batches
	cell.BatchItems = sdiff.BatchItems
	cell.ItemsPerBatch = sdiff.ItemsPerBatch()
	if cell.Committed > 0 {
		cell.CallsPerTxn = float64(sdiff.Calls()) / float64(cell.Committed)
	}
	cell.GroupFlushes = nodeAfter.GroupFlushes - nodeBefore.GroupFlushes
	cell.GroupedCommits = nodeAfter.GroupedCommits - nodeBefore.GroupedCommits
	if cell.GroupFlushes > 0 {
		cell.CommitsPerFlush = float64(cell.GroupedCommits) / float64(cell.GroupFlushes)
	}
	return cell, nil
}
