package experiments

import "testing"

// TestRecoveryCellsQuick locks in the recovery experiment's acceptance
// shape at quick scale: checkpointed reopens replay only the tail, the
// incremental bootstrap fetches exactly the watermark delta and skips the
// rest, the budget-constrained node spills and ends resident under its
// budget, and all three seeded chaos campaigns — storage crashes including
// one armed mid-spill, kills with incremental promotion — come back with a
// zero-anomaly checker verdict. The >=10x speedup bar on the largest log
// is a full-scale property (BENCH_recovery.json); at quick scale the test
// asserts the structural invariants, not wall-clock ratios.
func TestRecoveryCellsQuick(t *testing.T) {
	opts := Options{Scale: 0, Quick: true, Seed: 42, Payload: 256}
	cells, err := RecoveryCells(opts)
	if err != nil {
		t.Fatal(err)
	}

	var recoveries, bootstraps, budgets, campaigns int
	var campaignSpilled int64
	for i := range cells {
		cell := &cells[i]
		switch cell.Scenario {
		case "recovery":
			recoveries++
			if cell.FullReplayMS <= 0 || cell.CheckpointedMS <= 0 {
				t.Errorf("%d entries: missing reopen timings (full %.3f, ckpt %.3f)",
					cell.Entries, cell.FullReplayMS, cell.CheckpointedMS)
			}
			if cell.CheckpointEntries != int64(cell.Keys) {
				t.Errorf("%d entries: checkpoint holds %d entries, want one per live key (%d)",
					cell.Entries, cell.CheckpointEntries, cell.Keys)
			}
			if cell.ReplayedTail > int64(2*cell.TailRecords) {
				t.Errorf("%d entries: checkpointed reopen replayed %d records, want ~%d tail",
					cell.Entries, cell.ReplayedTail, cell.TailRecords)
			}
		case "bootstrap":
			bootstraps++
			if cell.FetchedRecords != cell.DeltaRecords {
				t.Errorf("delta %d: fetched %d records, want exactly the delta",
					cell.DeltaRecords, cell.FetchedRecords)
			}
			if want := int64(cell.Records - cell.DeltaRecords); cell.SkippedRecords != want {
				t.Errorf("delta %d: skipped %d records, want %d",
					cell.DeltaRecords, cell.SkippedRecords, want)
			}
		case "budget":
			budgets++
			if cell.Spilled == 0 {
				t.Error("budget cell spilled no records")
			}
			if cell.PeakBytes <= cell.BudgetBytes {
				t.Errorf("budget cell never exceeded its budget (peak %d <= %d): nothing was tested",
					cell.PeakBytes, cell.BudgetBytes)
			}
			if cell.FinalBytes > cell.BudgetBytes {
				t.Errorf("budget cell ended at %d resident bytes, over budget %d",
					cell.FinalBytes, cell.BudgetBytes)
			}
		case "campaign":
			campaigns++
			if cell.Verdict == nil || !cell.Verdict.Clean() {
				t.Errorf("seed %d: verdict %v", cell.Seed, cell.Verdict)
				if cell.Verdict != nil {
					t.Logf("violations: %v", cell.Verdict.Violations)
				}
			}
			if cell.StorageCrashes < 2 {
				t.Errorf("seed %d: %d storage crashes, want >= 2", cell.Seed, cell.StorageCrashes)
			}
			if cell.Kills < 1 || cell.Promotions != cell.Kills {
				t.Errorf("seed %d: kills=%d promotions=%d", cell.Seed, cell.Kills, cell.Promotions)
			}
			if cell.Committed < int64(cell.Requests) {
				t.Errorf("seed %d: committed %d < %d requests", cell.Seed, cell.Committed, cell.Requests)
			}
			campaignSpilled += cell.Spilled
			if cell.Checkpoints < 1 {
				t.Errorf("seed %d: WAL wrote no checkpoint", cell.Seed)
			}
			if cell.Verdict != nil && (cell.Verdict.FinalKeys == 0 || cell.Verdict.Reads == 0) {
				t.Errorf("seed %d: checker saw no history", cell.Seed)
			}
		}
	}
	if recoveries != 3 || bootstraps != 3 || budgets != 1 || campaigns != 3 {
		t.Fatalf("cell mix recovery=%d bootstrap=%d budget=%d campaign=%d, want 3/3/1/3",
			recoveries, bootstraps, budgets, campaigns)
	}
	// Whether a given seed overruns the node budget inside 40 quick-mode
	// requests is seed-dependent; that SOME campaign exercised the spill
	// path under chaos is not.
	if campaignSpilled == 0 {
		t.Error("no campaign spilled under its node budget")
	}

	tbl, err := RecoveryTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, len(cells))
}
