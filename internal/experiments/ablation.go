package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/core"
	"aft/internal/multicast"
	"aft/internal/storage"
	"aft/internal/workload"
)

// storeMetricsPuts reads a simulated store's put counter.
func storeMetricsPuts(s storage.Store) int64 {
	type metered interface{ Metrics() *storage.Metrics }
	if m, ok := s.(metered); ok {
		return m.Metrics().Puts.Load()
	}
	return 0
}

// Ablation exercises the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//  1. supersedence pruning (§4.1) on/off: how much multicast metadata a
//     contended workload generates;
//  2. data-cache size sweep (§3.1/§6.2): cache hit rate and latency as the
//     cache shrinks;
//  3. write-buffer spilling (§3.3): commit behaviour of a large
//     transaction with and without proactive spilling;
//  4. the packed (S3-optimized) data layout sketched in §8: end-to-end
//     latency of the canonical transaction over S3 with key-per-version
//     versus one-object-per-transaction layouts.
func Ablation(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)

	table := Table{
		Title:  "Ablation: pruning, cache size, spilling",
		Header: []string{"study", "config", "metric", "value"},
	}

	// --- 1. Supersedence pruning ---
	for _, prune := range []bool{true, false} {
		store := opts.newStore(kindDynamo)
		n1, err := newNode("abl-1", store, false)
		if err != nil {
			return table, err
		}
		n2, err := newNode("abl-2", store, false)
		if err != nil {
			return table, err
		}
		bus := multicast.NewBus()
		bus.Register(n1)
		bus.Register(n2)
		// A contended workload: every transaction rewrites the same two
		// hot keys, so most commits are superseded by flush time.
		txns := opts.scaled(500)
		for i := 0; i < txns; i++ {
			txid, err := n1.StartTransaction(ctx)
			if err != nil {
				return table, err
			}
			n1.Put(ctx, txid, "hot-a", payload)
			n1.Put(ctx, txid, "hot-b", payload)
			if _, err := n1.CommitTransaction(ctx, txid); err != nil {
				return table, err
			}
			if i%50 == 49 {
				bus.FlushPeer(n1, prune)
			}
		}
		bus.FlushPeer(n1, prune)
		m := bus.Metrics().Snapshot()
		name := map[bool]string{true: "pruning on", false: "pruning off"}[prune]
		table.Rows = append(table.Rows,
			[]string{"multicast", name, "records broadcast", fmt.Sprint(m.Broadcast)},
			[]string{"multicast", name, "records pruned", fmt.Sprint(m.Pruned)},
		)
	}

	// --- 2. Data cache size sweep ---
	for _, entries := range []int{0, 64, 1024, 16384} {
		store := opts.newStore(kindDynamo)
		node, err := core.NewNode(core.Config{
			NodeID:           "abl-cache",
			Store:            store,
			EnableDataCache:  entries > 0,
			DataCacheEntries: entries,
		})
		if err != nil {
			return table, err
		}
		keys := 2000
		if opts.Quick {
			keys = 500
		}
		reg := workload.NewRegistry()
		if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
			return table, err
		}
		platform, err := opts.newPlatform(node)
		if err != nil {
			return table, err
		}
		exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
		gen := workload.NewGenerator(opts.Seed, workload.NewZipf(opts.Seed, keys, 1.5), 2, 1, 2)
		iters := opts.scaled(500)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := exec.Execute(ctx, gen.Next()); err != nil {
				return table, err
			}
		}
		elapsed := opts.rescale(time.Since(start))
		nm := node.Metrics().Snapshot()
		hitRate := 0.0
		if nm.Reads > 0 {
			hitRate = float64(nm.CacheHits) / float64(nm.Reads)
		}
		name := fmt.Sprintf("%d entries", entries)
		if entries == 0 {
			name = "cache off"
		}
		table.Rows = append(table.Rows,
			[]string{"data cache", name, "hit rate", fmt.Sprintf("%.0f%%", 100*hitRate)},
			[]string{"data cache", name, "mean txn (ms)", fmt.Sprintf("%.2f", float64(elapsed.Milliseconds())/float64(iters))},
		)
	}

	// --- 4. Packed (S3-optimized) data layout, §8 ---
	for _, packed := range []bool{false, true} {
		store := opts.newStore(kindS3)
		node, err := core.NewNode(core.Config{
			NodeID:       "abl-pack",
			Store:        store,
			PackedLayout: packed,
		})
		if err != nil {
			return table, err
		}
		keys := 500
		reg := workload.NewRegistry()
		if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
			return table, err
		}
		platform, err := opts.newPlatform(node)
		if err != nil {
			return table, err
		}
		exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
		gen := workload.NewGenerator(opts.Seed, workload.NewZipf(opts.Seed, keys, 1.0), 2, 1, 2)
		iters := opts.scaled(200)
		puts0 := storeMetricsPuts(store)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := exec.Execute(ctx, gen.Next()); err != nil {
				return table, err
			}
		}
		elapsed := opts.rescale(time.Since(start))
		name := "key-per-version"
		if packed {
			name = "packed layout"
		}
		table.Rows = append(table.Rows,
			[]string{"s3 layout", name, "mean txn (ms)", fmt.Sprintf("%.1f", float64(elapsed.Milliseconds())/float64(iters))},
			[]string{"s3 layout", name, "storage puts/txn", fmt.Sprintf("%.1f", float64(storeMetricsPuts(store)-puts0)/float64(iters))},
		)
	}

	// --- 3. Write-buffer spilling ---
	for _, threshold := range []int{0, 64 << 10} {
		store := opts.newStore(kindDynamo)
		node, err := core.NewNode(core.Config{
			NodeID:         "abl-spill",
			Store:          store,
			SpillThreshold: threshold,
		})
		if err != nil {
			return table, err
		}
		writes := 100
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return table, err
		}
		for i := 0; i < writes; i++ {
			if err := node.Put(ctx, txid, workload.KeyName(i), payload); err != nil {
				return table, err
			}
		}
		start := time.Now()
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			return table, err
		}
		commitLatency := opts.rescale(time.Since(start))
		name := "spill off"
		if threshold > 0 {
			name = "spill at 64KiB"
		}
		table.Rows = append(table.Rows,
			[]string{"spilling", name, "spill events", fmt.Sprint(node.Metrics().Snapshot().Spills)},
			[]string{"spilling", name, "commit latency (ms)", ms(commitLatency)},
		)
	}
	return table, nil
}
