// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each Fig*/Table* function runs the corresponding
// experiment against the simulated substrates and returns printable
// results; cmd/aft-bench is the command-line front end.
//
// Absolute numbers will not match the paper — the substrates are latency
// simulators, not AWS — but each experiment preserves the paper's shape:
// who wins, by what rough factor, and where behaviour changes. The
// harness supports a time scale (Options.Scale) so full sweeps finish in
// minutes; reported latencies and throughputs are rescaled to
// paper-equivalent units.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"aft/internal/core"
	"aft/internal/faas"
	"aft/internal/latency"
	"aft/internal/stats"
	"aft/internal/storage"
	"aft/internal/storage/dynamosim"
	"aft/internal/storage/redissim"
	"aft/internal/storage/s3sim"
	"aft/internal/storage/walengine"
	"aft/internal/workload"
)

// Options tune an experiment run.
type Options struct {
	// Scale multiplies simulated latencies: 1.0 = paper speed, 0.1 = 10x
	// faster (default), 0 = no latency at all (smoke tests). Reported
	// latencies are divided by Scale so output stays in paper-equivalent
	// units.
	Scale float64
	// Quick shrinks workload sizes ~10x for CI-speed runs.
	Quick bool
	// Seed drives every random source in the experiment.
	Seed int64
	// Payload is the value size in bytes (paper: 4096).
	Payload int
	// spin enables busy-wait latency injection for sub-millisecond
	// modeled waits (precise but CPU-hungry); the low-concurrency latency
	// experiments set it internally.
	spin bool

	// Backend, when non-empty, overrides the storage backend every
	// experiment builds ("dynamodb" | "s3" | "redis" | "wal") — the
	// aft-bench -store flag. Experiments that sweep backends themselves
	// (fig3) collapse onto the override — their row labels keep the
	// sweep's names (BENCH json records the override in "store"), and
	// rows needing a capability the override lacks (transaction mode)
	// are skipped. The default keeps each experiment's own choice.
	Backend string

	// ChaosErrorRate, ChaosPartialRate, and ChaosSpikeRate override the
	// chaos experiment's per-operation fault probabilities; 0 selects the
	// defaults (see chaos.go).
	ChaosErrorRate, ChaosPartialRate, ChaosSpikeRate float64
	// ChaosKills overrides how many node kills each chaos campaign
	// schedules; 0 selects the default.
	ChaosKills int
	// ChaosRequests overrides the chaos campaign length; 0 selects the
	// default (Quick-aware).
	ChaosRequests int

	// WireCodec restricts the wire experiment's codec sweep to one codec
	// ("binary" | "gob") — the aft-bench -wire-codec flag. Empty sweeps
	// both, which is what the committed BENCH_wire.json compares.
	WireCodec string
}

// withDefaults normalizes options.
func (o Options) withDefaults() Options {
	if o.Payload == 0 {
		o.Payload = 4096
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) sleeper() *latency.Sleeper {
	if o.Scale <= 0 {
		return latency.NoSleep
	}
	return &latency.Sleeper{Scale: o.Scale, Spin: o.spin}
}

// rescale converts a measured duration back to paper-equivalent time.
func (o Options) rescale(d time.Duration) time.Duration {
	if o.Scale <= 0 {
		return d
	}
	return time.Duration(float64(d) / o.Scale)
}

// rescaleRate converts a measured rate (per second) to paper-equivalent.
func (o Options) rescaleRate(r float64) float64 {
	if o.Scale <= 0 {
		return r
	}
	return r * o.Scale
}

// scaled shrinks a count in quick mode.
func (o Options) scaled(n int) int {
	if o.Quick {
		n /= 10
		if n < 5 {
			n = 5
		}
	}
	return n
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table to w.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", stats.Millis(d)) }

// storeKind names a simulated backend.
type storeKind string

// Simulated backends used across experiments, plus the disk-backed WAL.
const (
	kindDynamo storeKind = "dynamodb"
	kindS3     storeKind = "s3"
	kindRedis  storeKind = "redis"
	kindWAL    storeKind = "wal"
)

// newStore builds a latency-injected simulated backend, or the disk WAL
// engine when selected. Options.Backend overrides the experiment's choice.
func (o Options) newStore(kind storeKind) storage.Store {
	if o.Backend != "" {
		kind = storeKind(o.Backend)
	}
	switch kind {
	case kindWAL:
		// The WAL engine's latency is the real disk's. Every log directory
		// lives under one per-process temp root so CleanupTempStores can
		// reclaim them all when the bench exits.
		dir, err := newWALDir()
		if err != nil {
			panic(fmt.Sprintf("experiments: wal store: %v", err))
		}
		s, err := walengine.Open(dir, walengine.Options{})
		if err != nil {
			panic(fmt.Sprintf("experiments: wal store: %v", err))
		}
		return s
	case kindS3:
		var m *latency.Model
		if o.Scale > 0 {
			m = latency.NewModel(latency.S3Profile(), o.Seed)
		}
		return s3sim.New(s3sim.Options{Latency: m, Sleeper: o.sleeper()})
	case kindRedis:
		var m *latency.Model
		if o.Scale > 0 {
			m = latency.NewModel(latency.RedisProfile(), o.Seed)
		}
		return redissim.New(redissim.Options{Latency: m, Sleeper: o.sleeper()})
	default:
		var m *latency.Model
		if o.Scale > 0 {
			m = latency.NewModel(latency.DynamoDBProfile(), o.Seed)
		}
		return dynamosim.New(dynamosim.Options{Latency: m, Sleeper: o.sleeper()})
	}
}

// walTmp tracks the per-process root under which every Backend-override
// WAL store lays its log directory.
var walTmp struct {
	mu   sync.Mutex
	root string
	n    int
}

// newWALDir allocates a fresh log directory under the process's WAL root.
func newWALDir() (string, error) {
	walTmp.mu.Lock()
	defer walTmp.mu.Unlock()
	if walTmp.root == "" {
		root, err := os.MkdirTemp("", "aft-bench-wal-*")
		if err != nil {
			return "", err
		}
		walTmp.root = root
	}
	walTmp.n++
	dir := filepath.Join(walTmp.root, fmt.Sprintf("store-%03d", walTmp.n))
	if err := os.Mkdir(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// CleanupTempStores removes every WAL log directory created for the
// Backend override ("-store wal"); aft-bench calls it before exiting. The
// stores' open segment handles die with the process.
func CleanupTempStores() {
	walTmp.mu.Lock()
	defer walTmp.mu.Unlock()
	if walTmp.root != "" {
		os.RemoveAll(walTmp.root)
		walTmp.root, walTmp.n = "", 0
	}
}

// lambdaModel returns the FaaS invocation-overhead model.
func (o Options) lambdaModel() *latency.Model {
	if o.Scale <= 0 {
		return nil
	}
	return latency.NewModel(latency.LambdaProfile(), o.Seed+1)
}

// newNode builds an AFT node over store.
func newNode(id string, store storage.Store, cache bool) (*core.Node, error) {
	return core.NewNode(core.Config{
		NodeID:           id,
		Store:            store,
		EnableDataCache:  cache,
		DataCacheEntries: 16384,
	})
}

// newPlatform builds a FaaS platform over client.
func (o Options) newPlatform(client faas.TxnClient) (*faas.Platform, error) {
	return faas.New(faas.Config{
		Client:   client,
		Overhead: o.lambdaModel(),
		Sleeper:  o.sleeper(),
		Seed:     o.Seed,
	})
}

// seedAFT populates nKeys committed key versions through a loader node so
// experiment reads always find data. Values carry "seed" anomaly metadata
// (empty cowritten set) and the seed writer is registered in reg when
// non-nil.
func seedAFT(ctx context.Context, node *core.Node, reg *workload.Registry, nKeys int, payload []byte) error {
	seedMeta := workload.Meta{TS: 1, UUID: "seed"}
	value, err := workload.Wrap(seedMeta, payload)
	if err != nil {
		return err
	}
	if reg != nil {
		reg.Register("seed", seedMeta.OrderID())
	}
	const perTxn = 20
	for start := 0; start < nKeys; start += perTxn {
		txid, err := node.StartTransaction(ctx)
		if err != nil {
			return err
		}
		for i := start; i < start+perTxn && i < nKeys; i++ {
			if err := node.Put(ctx, txid, workload.KeyName(i), value); err != nil {
				return err
			}
		}
		if _, err := node.CommitTransaction(ctx, txid); err != nil {
			return err
		}
	}
	return nil
}

// seedPlain writes nKeys wrapped values directly to storage (for the plain
// and transaction-mode baselines).
func seedPlain(ctx context.Context, store storage.Store, reg *workload.Registry, nKeys int, payload []byte) error {
	for i := 0; i < nKeys; i++ {
		meta := workload.Meta{TS: 1, UUID: "seed", Cowritten: nil}
		v, err := workload.Wrap(meta, payload)
		if err != nil {
			return err
		}
		if err := store.Put(ctx, workload.KeyName(i), v); err != nil {
			return err
		}
	}
	if reg != nil {
		reg.Register("seed", workload.Meta{TS: 1, UUID: "seed"}.OrderID())
	}
	return nil
}

// runClients runs fn concurrently on `clients` goroutines, `perClient`
// iterations each, recording per-iteration latency. Iteration errors abort
// the run.
func runClients(clients, perClient int, fn func(client, iter int) error) (*stats.Recorder, error) {
	rec := stats.NewRecorder()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				start := time.Now()
				if err := fn(c, i); err != nil {
					errs <- fmt.Errorf("client %d iter %d: %w", c, i, err)
					return
				}
				rec.Record(time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return rec, err
	}
	return rec, nil
}

// runForDuration runs fn on `clients` goroutines until d elapses and
// returns the completed-iteration count and elapsed time.
func runForDuration(clients int, d time.Duration, fn func(client int) error) (int64, time.Duration, error) {
	var count stats.Counter
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := fn(c); err != nil {
					errs <- err
					return
				}
				count.Inc(1)
			}
		}(c)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return count.Value(), elapsed, err
	}
	return count.Value(), elapsed, nil
}
