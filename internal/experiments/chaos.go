package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"aft/internal/chaos"
	"aft/internal/checker"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/telemetry"
	"aft/internal/workload"
)

// Chaos runs the closed-loop correctness experiment: a seeded
// fault-injection campaign (transient storage errors, partial batch
// failures, latency spikes, node kills with standby promotion and
// fault-manager recovery) under the canonical workload, with the history
// checker proving read atomicity, repeatable read, and atomic write
// durability — or pinpointing where they broke.
//
// Determinism: one driver goroutine issues every request, kills fire
// synchronously between requests (the scheduler blocks until the standby
// promotion completes), and all background periods are disabled in favor
// of explicit maintenance points — so for a fixed seed the storage
// operation sequence, every fault decision, every retry, and therefore the
// entire cell (verdict included) is bit-for-bit reproducible.
func Chaos(opts Options) (Table, error) {
	cells, err := ChaosCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ChaosTable(cells)
}

// ChaosCell is one seed's full campaign result, exposed for the bench
// harness's machine-readable output. Every field is deterministic for a
// fixed seed (no wall-clock times, no generated IDs).
type ChaosCell struct {
	Seed     int64 `json:"seed"`
	Requests int   `json:"requests"`
	Keys     int   `json:"keys"`

	Committed     int64 `json:"committed"`
	Redos         int64 `json:"redos"`
	CommitRetries int64 `json:"commit_retries"`

	Kills      int `json:"kills"`
	Promotions int `json:"promotions"`

	StorageOps       int64 `json:"storage_ops"`
	InjectedErrors   int64 `json:"injected_errors"`
	PartialBatchPuts int64 `json:"partial_batch_puts"`
	PartialBatchGets int64 `json:"partial_batch_gets"`
	Spikes           int64 `json:"spikes"`

	RecoveredRecords int64 `json:"recovered_records"`

	Verdict checker.Verdict `json:"verdict"`

	// Journal is the flight-recorder evidence attached to the verdict:
	// one "type node k=v ..." line per campaign event (kills, standby
	// promotions, checker violations), in canonical sorted order rather
	// than arrival order — the promotion goroutine records its event
	// moments after the new node becomes visible, so arrival seq could
	// race the driver's next kill, and this cell is under a bit-for-bit
	// determinism contract.
	Journal []string `json:"journal"`
}

// ChaosTable renders measured cells as the experiment's table.
func ChaosTable(cells []ChaosCell) (Table, error) {
	table := Table{
		Title: "Chaos: seeded fault injection + read-atomicity verdict",
		Header: []string{"seed", "requests", "committed", "redos", "commit retries",
			"kills", "errors", "partial puts", "spikes", "recovered", "anomalies", "verdict"},
		Notes: []string{
			"every request redone until committed; faults: transient errors, partial batch writes, latency spikes, node kills",
			"recovered: commit records the fault manager found only by scanning storage (victim died before broadcasting)",
			"verdict: the checker's replay of the full observed history plus a post-recovery final-state audit",
		},
	}
	for _, c := range cells {
		verdict := "CLEAN"
		if !c.Verdict.Clean() {
			verdict = "ANOMALOUS"
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(c.Seed), fmt.Sprint(c.Requests), fmt.Sprint(c.Committed),
			fmt.Sprint(c.Redos), fmt.Sprint(c.CommitRetries), fmt.Sprint(c.Kills),
			fmt.Sprint(c.InjectedErrors), fmt.Sprint(c.PartialBatchPuts),
			fmt.Sprint(c.Spikes), fmt.Sprint(c.RecoveredRecords),
			fmt.Sprint(c.Verdict.Anomalies()), verdict,
		})
	}
	return table, nil
}

// ChaosCells runs one campaign per seed (opts.Seed, +1, +2): the
// acceptance bar requires a zero-anomaly verdict across three seeds that
// each include at least one node kill and one partial batch-write failure.
func ChaosCells(opts Options) ([]ChaosCell, error) {
	opts = opts.withDefaults()
	var cells []ChaosCell
	for i := int64(0); i < 3; i++ {
		cell, err := runChaosCell(opts, opts.Seed+i)
		if err != nil {
			return cells, fmt.Errorf("chaos seed %d: %w", opts.Seed+i, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// chaos campaign shape.
const (
	chaosNodes    = 3
	chaosKeys     = 128
	chaosSeedPer  = 16 // keys seeded per bootstrap transaction
	chaosMaintain = 20 // requests between maintenance points
	// chaosEpoch starts the campaign's virtual clock high enough that
	// every timestamp renders at a fixed decimal width, keeping commit-key
	// lexicographic order equal to timestamp order.
	chaosEpoch = int64(1) << 50
)

// chaosFaultRates returns the campaign's fault rates, honoring overrides.
func (o Options) chaosFaultRates() (errRate, partialRate, spikeRate float64) {
	errRate, partialRate, spikeRate = 0.03, 0.12, 0.04
	if o.ChaosErrorRate > 0 {
		errRate = o.ChaosErrorRate
	}
	if o.ChaosPartialRate > 0 {
		partialRate = o.ChaosPartialRate
	}
	if o.ChaosSpikeRate > 0 {
		spikeRate = o.ChaosSpikeRate
	}
	return errRate, partialRate, spikeRate
}

// runChaosCell runs one seed's campaign.
func runChaosCell(opts Options, seed int64) (ChaosCell, error) {
	ctx := context.Background()
	requests := opts.ChaosRequests
	if requests <= 0 {
		requests = 160
		if opts.Quick {
			requests = 48
		}
	}
	kills := opts.ChaosKills
	if kills <= 0 {
		kills = 2
	}
	cell := ChaosCell{Seed: seed, Requests: requests, Keys: chaosKeys}

	// The storage substrate under test, behind the fault injector. The
	// latency model (when scale > 0) draws from its own seeded source;
	// injection decisions draw from the chaos seed.
	storeOpts := opts
	storeOpts.Seed = seed
	errRate, partialRate, spikeRate := opts.chaosFaultRates()
	st := chaos.Wrap(storeOpts.newStore(kindDynamo), chaos.Config{
		Seed:        seed,
		ErrorRate:   errRate,
		PartialRate: partialRate,
		SpikeRate:   spikeRate,
		Spike:       20 * time.Millisecond,
		Sleeper:     opts.sleeper(),
	})

	// Background periods are disabled (multicast period effectively
	// infinite, no GC loops): every exchange and collection runs at an
	// explicit, deterministic maintenance point instead. Transaction IDs
	// come from a shared virtual clock plus seeded UUID entropy, so every
	// storage KEY reproduces bit-for-bit — without this, partial-batch
	// key splits (hash-of-key) would depend on wall-clock timestamps and
	// crypto-random UUIDs and the fault pattern would drift run to run.
	journal := telemetry.NewJournal(telemetry.JournalOptions{})
	c, err := cluster.New(cluster.Config{
		Nodes:           chaosNodes,
		Standbys:        kills,
		Store:           st,
		Node:            core.Config{EnableDataCache: true, IDEntropySeed: seed},
		Clock:           idgen.NewVirtualClock(chaosEpoch, 1),
		MulticastPeriod: time.Hour,
		PruneMulticast:  true,
		Events:          journal,
	})
	if err != nil {
		return cell, err
	}
	if err := c.Start(ctx); err != nil {
		return cell, err
	}
	defer c.Stop()

	check := checker.New()
	check.SetJournal(journal)
	runner := &chaos.Runner{
		Client:  c.Client(),
		Payload: workload.Payload(seed, opts.Payload),
		Check:   check,
	}

	// Seed every key clean, so reads always find a committed version.
	for start := 0; start < chaosKeys; start += chaosSeedPer {
		var ops []workload.Op
		for i := start; i < start+chaosSeedPer && i < chaosKeys; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: workload.KeyName(i)})
		}
		if err := runner.Do(ctx, workload.Request{Funcs: [][]workload.Op{ops}}); err != nil {
			return cell, fmt.Errorf("seeding: %w", err)
		}
	}
	c.FlushMulticast()

	// Chaos on. Kills fire in the middle three fifths of the run so each
	// has workload before (history to lose) and after (history to verify).
	st.SetEnabled(true)
	sched := chaos.NewScheduler(c, seed, chaos.PlanKills(seed, kills, requests/5, 4*requests/5))
	gen := workload.NewGenerator(seed, workload.NewZipf(seed+100, chaosKeys, 1.0), 2, 2, 2)
	for i := 0; i < requests; i++ {
		if err := runner.Do(ctx, gen.Next()); err != nil {
			return cell, fmt.Errorf("request %d: %w", i, err)
		}
		if err := sched.Tick(ctx, i+1); err != nil {
			return cell, err
		}
		if (i+1)%chaosMaintain == 0 {
			if err := chaosMaintenance(ctx, c); err != nil {
				return cell, err
			}
		}
	}

	// Quiesce: faults off, full exchange and recovery, then the audit.
	st.SetEnabled(false)
	if err := chaosMaintenance(ctx, c); err != nil {
		return cell, err
	}
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		return cell, err
	}
	keys := make([]string, chaosKeys)
	for i := range keys {
		keys[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keys)
	if err != nil {
		return cell, err
	}
	cell.Verdict = check.Verdict(final)
	cell.Journal = canonicalJournal(journal)

	rm := runner.Metrics().Snapshot()
	cell.Committed = rm.Commits
	cell.Redos = rm.Redos
	cell.CommitRetries = rm.CommitRetries
	cell.Kills = sched.Kills()
	cell.Promotions = sched.Promotions()
	fm := st.FaultMetrics().Snapshot()
	cell.StorageOps = fm.Ops
	cell.InjectedErrors = fm.Errors
	cell.PartialBatchPuts = fm.PartialBatchPuts
	cell.PartialBatchGets = fm.PartialBatchGets
	cell.Spikes = fm.Spikes
	cell.RecoveredRecords = c.FaultManager().Metrics().Snapshot().Recovered
	return cell, nil
}

// canonicalJournal renders the campaign's flight-recorder events as one
// line per event, sorted. Wall-clock timestamps and arrival seq are
// dropped: only the deterministic content (what happened, to whom, with
// what attributes) is verdict evidence.
func canonicalJournal(j *telemetry.Journal) []string {
	evs := j.Snapshot(telemetry.EventFilter{})
	lines := make([]string, 0, len(evs))
	for _, ev := range evs {
		line := string(ev.Type) + " " + ev.Node
		for i := 0; i+1 < len(ev.Attrs); i += 2 {
			line += " " + ev.Attrs[i] + "=" + ev.Attrs[i+1]
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return lines
}

// chaosMaintenance runs one deterministic maintenance point: multicast
// exchange, local metadata sweeps, the fault manager's recovery scan, and
// one global GC round. Each storage-facing step retries through its own
// injected faults.
func chaosMaintenance(ctx context.Context, c *cluster.Cluster) error {
	c.FlushMulticast()
	for _, n := range c.Nodes() {
		n.SweepLocalMetadata(0)
	}
	if err := chaos.Retry(ctx, 10, func() error {
		return c.FaultManager().ScanStorage(ctx)
	}); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if err := chaos.Retry(ctx, 10, func() error {
		_, err := c.FaultManager().CollectOnce(ctx, 2000)
		return err
	}); err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	return nil
}
