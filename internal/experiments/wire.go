package experiments

// The wire experiment quantifies the protocol-v3 codec change: the
// length-prefixed binary framing with pipelined connections against the
// legacy lockstep gob codec, over real TCP loopback. Each cell fixes a
// codec, a concurrency level (closed-loop workers ≈ the connection
// count a lockstep codec would need), and a workload — "ping" is the
// pure wire-path round trip (no storage, no transaction state), "txn"
// the full Start/Put/Commit cycle — and reports throughput, allocation
// rate, and client-observed latency percentiles. The committed
// BENCH_wire.json is the artifact behind the README's reading guide.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"aft/internal/core"
	"aft/internal/stats"
	"aft/internal/storage/dynamosim"
	"aft/internal/wire"
)

// WireCell is one codec × concurrency × workload measurement.
type WireCell struct {
	Codec    string `json:"codec"`    // "gob" | "binary"
	Conns    int    `json:"conns"`    // closed-loop workers (= pool cap)
	Workload string `json:"workload"` // "ping" | "txn"
	Ops      int    `json:"ops"`      // completed operations

	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"` // process-wide: client+server
	BytesPerOp  float64 `json:"bytes_per_op"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`

	// Binary-codec internals (zero on gob cells): how deep the pipeline
	// actually ran, how many TCP conns carried the load, and how many
	// frames each flush syscall batched.
	PipelineDepthHW int64   `json:"pipeline_depth_hw,omitempty"`
	WireConns       int64   `json:"wire_conns,omitempty"`
	FramesPerFlush  float64 `json:"frames_per_flush,omitempty"`

	WallMS int64 `json:"wall_ms"`
}

// Wire runs the codec comparison and renders its table.
func Wire(opts Options) (Table, error) {
	cells, err := WireCells(opts)
	if err != nil {
		return Table{}, err
	}
	return WireTable(cells)
}

// WireTable renders measured cells.
func WireTable(cells []WireCell) (Table, error) {
	table := Table{
		Title:  "Wire codec: lockstep gob vs pipelined binary framing (TCP loopback)",
		Header: []string{"workload", "codec", "conns", "ops", "ops/s", "allocs/op", "B/op", "p50 us", "p99 us", "depth hw", "frames/flush"},
		Notes: []string{
			"conns: closed-loop workers; the gob codec needs one lockstep TCP conn per worker, the binary codec multiplexes them onto a pipelined pool",
			"allocs/op and B/op are process-wide (client and server share the process), so both sides' codecs are charged",
			"depth hw: high-water mark of ops concurrently in flight on one pipelined conn (gob is lockstep: always 1, reported as -)",
		},
	}
	for _, c := range cells {
		depth, fpf := "-", "-"
		if c.Codec == wire.CodecBinary {
			depth = fmt.Sprint(c.PipelineDepthHW)
			fpf = fmt.Sprintf("%.1f", c.FramesPerFlush)
		}
		table.Rows = append(table.Rows, []string{
			c.Workload, c.Codec, fmt.Sprint(c.Conns), fmt.Sprint(c.Ops),
			fmt.Sprintf("%.0f", c.OpsPerSec),
			fmt.Sprintf("%.1f", c.AllocsPerOp),
			fmt.Sprintf("%.0f", c.BytesPerOp),
			fmt.Sprintf("%.0f", c.P50Micros),
			fmt.Sprintf("%.0f", c.P99Micros),
			depth, fpf,
		})
	}
	return table, nil
}

// WireCells sweeps workload × codec × concurrency.
func WireCells(opts Options) ([]WireCell, error) {
	opts = opts.withDefaults()
	conns := []int{64, 256, 1024}
	opsPerWorker := 60
	if opts.Quick {
		conns = []int{16, 64}
		opsPerWorker = 25
	}
	codecs := []string{wire.CodecGob, wire.CodecBinary}
	if opts.WireCodec != "" {
		codecs = []string{opts.WireCodec}
	}
	var cells []WireCell
	for _, workload := range []string{"ping", "txn"} {
		for _, codec := range codecs {
			for _, nc := range conns {
				cell, err := wireCell(codec, workload, nc, opsPerWorker)
				if err != nil {
					return nil, fmt.Errorf("wire %s/%s/%d: %w", workload, codec, nc, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func wireCell(codec, workload string, workers, opsPerWorker int) (WireCell, error) {
	store := dynamosim.New(dynamosim.Options{})
	node, err := core.NewNode(core.Config{NodeID: "wire-bench", Store: store})
	if err != nil {
		return WireCell{}, err
	}
	srv := wire.NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return WireCell{}, err
	}
	defer srv.Close()

	// The lockstep gob codec has no choice but one conn per closed-loop
	// worker; the binary codec multiplexes everything onto a small
	// pipelined pool — the provisioning a real deployment would use.
	maxConns := workers
	if codec == wire.CodecBinary && maxConns > 8 {
		maxConns = 8
	}
	client, err := wire.DialWith(addr.String(), wire.DialConfig{
		MaxConns: maxConns, OpTimeout: 30 * time.Second, Codec: codec,
	})
	if err != nil {
		return WireCell{}, err
	}
	defer client.Close()
	if client.Codec() != codec {
		return WireCell{}, fmt.Errorf("negotiated %q, want %q", client.Codec(), codec)
	}

	ctx := context.Background()
	runWorker := func(w int, rec *stats.Recorder) error {
		for i := 0; i < opsPerWorker; i++ {
			start := time.Now()
			switch workload {
			case "ping":
				if err := client.Ping(ctx); err != nil {
					return err
				}
			case "txn":
				txid, err := client.StartTransaction(ctx)
				if err != nil {
					return err
				}
				if err := client.Put(ctx, txid, fmt.Sprintf("w%d", w), []byte("bench-value")); err != nil {
					return err
				}
				if _, err := client.CommitTransaction(ctx, txid); err != nil {
					return err
				}
			}
			rec.Record(time.Since(start))
		}
		return nil
	}

	// Warm the pools, conn dials, and codec negotiation out of the
	// measured window.
	if err := runWorker(-1, stats.NewRecorder()); err != nil {
		return WireCell{}, err
	}

	// One shared recorder: Record is mutex-guarded, and the lock cost is
	// identical across codecs so the comparison stays fair.
	rec := stats.NewRecorder()
	errs := make(chan error, workers)
	m0 := client.Metrics().Snapshot()
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		go func(w int) { errs <- runWorker(w, rec) }(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			return WireCell{}, err
		}
	}
	wall := time.Since(t0)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	sum := rec.Summarize()

	ops := workers * opsPerWorker
	cell := WireCell{
		Codec: codec, Conns: workers, Workload: workload, Ops: ops,
		OpsPerSec:   float64(ops) / wall.Seconds(),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops),
		P50Micros:   float64(sum.Median.Microseconds()),
		P99Micros:   float64(sum.P99.Microseconds()),
		WallMS:      wall.Milliseconds(),
	}
	if codec == wire.CodecBinary {
		// Diff against the pre-run snapshot so the sequential warmup
		// (frames == flushes by construction) doesn't dilute the ratio.
		m := client.Metrics().Snapshot()
		cell.PipelineDepthHW = m.PipelineDepthHW
		cell.WireConns = m.BinaryConns
		if fl := m.Flushes - m0.Flushes; fl > 0 {
			cell.FramesPerFlush = float64(m.FramesSent-m0.FramesSent) / float64(fl)
		}
	}
	return cell, nil
}
