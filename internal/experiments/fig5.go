package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/stats"
	"aft/internal/workload"
)

// Fig5 reproduces Figure 5 (§6.3): latency of a 10-IO, 2-function
// transaction as the read fraction sweeps from 0% to 100%, for AFT over
// DynamoDB and AFT over Redis.
//
// Expected shapes: AFT-D varies mildly — all writes collapse into one
// batch call plus a commit record, while each read is its own call, with a
// small dip at 100% reads (no batch write at all); AFT-R is flat — every
// IO is its own Redis call regardless of kind (11 calls total).
func Fig5(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.spin = true // few clients: precise sub-ms latency injection
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const clients = 10
	perClient := opts.scaled(300)
	const keys = 1000
	const zipf = 1.0

	table := Table{
		Title:  "Figure 5: read-write ratio, 10 IOs across 2 functions (ms, paper-equivalent)",
		Header: []string{"store", "reads", "median", "p99"},
	}

	for _, kind := range []storeKind{kindDynamo, kindRedis} {
		for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
			store := opts.newStore(kind)
			node, err := newNode("fig5", store, false)
			if err != nil {
				return table, err
			}
			reg := workload.NewRegistry()
			if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
				return table, err
			}
			platform, err := opts.newPlatform(node)
			if err != nil {
				return table, err
			}
			exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})

			gens := make([]*workload.Generator, clients)
			for c := range gens {
				gens[c] = workload.NewRatioGenerator(opts.Seed+int64(c),
					workload.NewZipf(opts.Seed+int64(100+c), keys, zipf), 2, 10, frac)
			}
			rec := stats.NewRecorder()
			_, err = runClients(clients, perClient, func(client, iter int) error {
				start := time.Now()
				if _, err := exec.Execute(ctx, gens[client].Next()); err != nil {
					return err
				}
				rec.Record(opts.rescale(time.Since(start)))
				return nil
			})
			if err != nil {
				return table, fmt.Errorf("fig5 %s %.0f%%: %w", kind, frac*100, err)
			}
			s := rec.Summarize()
			table.Rows = append(table.Rows, []string{
				string(kind), fmt.Sprintf("%.0f%%", frac*100), ms(s.Median), ms(s.P99),
			})
		}
	}
	return table, nil
}
