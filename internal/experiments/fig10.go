package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/faas"
	"aft/internal/latency"
	"aft/internal/workload"
)

// Fig10 reproduces Figure 10 (§6.7): the throughput timeline of a 4-node
// deployment under 200 clients when one node is killed. The cluster
// detects the failure (~5 s), promotes a pre-allocated standby whose
// warm-up (container download + metadata cache warming) takes ~45 s, and
// throughput returns to its pre-failure peak.
//
// Expected shape: an immediate ~15-25% dip at the kill, a slight downward
// drift while three saturated nodes queue requests, then recovery to the
// original plateau once the replacement joins.
func Fig10(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	// A smaller payload than the canonical 4 KB keeps the 90-second,
	// ~200k-transaction in-process run inside host memory; payload size
	// does not drive this figure's shape (latency is per-op dominated).
	payload := workload.Payload(opts.Seed, 512)
	const keys = 1000
	const zipf = 1.5
	clients := 160
	totalPaperSeconds := 90
	killAtPaperSeconds := 10
	if opts.Quick {
		clients = 60
		totalPaperSeconds = 30
		killAtPaperSeconds = 5
	}

	// Paper-equivalent timings, scaled to experiment time.
	scale := opts.Scale
	if scale <= 0 {
		scale = 0.01 // smoke runs: 90 "seconds" in 0.9s
	}
	second := time.Duration(float64(time.Second) * scale)
	detectDelay := 5 * second
	// The paper's ~45 s warm-up covers container download plus metadata
	// cache warming; here the modeled delay covers the download and the
	// replacement's REAL bootstrap (reading the latest commit records at
	// simulated storage latency) supplies the cache-warming portion.
	joinDelay := 30 * second

	table := Table{
		Title:  "Figure 10: throughput timeline across a node failure (txn/s, paper-equivalent)",
		Header: []string{"t", "throughput", "nodes", "event"},
		Notes: []string{
			fmt.Sprintf("4 nodes, %d clients; kill at t=%ds; detection ~5s; standby warm-up ~45s", clients, killAtPaperSeconds),
		},
	}

	store := opts.newStore(kindDynamo)
	c, err := cluster.New(cluster.Config{
		Nodes:    4,
		Standbys: 1,
		Store:    store,
		Node: core.Config{EnableDataCache: true, MaxConcurrent: nodeConcurrency,
			BootstrapLimit: 1500},
		MulticastPeriod: second,
		PruneMulticast:  true,
		// GC runs in deployed configurations (§6.6 shows it costs no
		// throughput) and bounds the commit set this long run accretes.
		LocalGCInterval:  second,
		GlobalGCInterval: 2 * second,
		DetectDelay:      detectDelay,
		JoinDelay:        joinDelay,
		Sleeper:          &latency.Sleeper{Scale: 1}, // delays already scaled above
	})
	if err != nil {
		return table, err
	}
	if err := c.Start(ctx); err != nil {
		return table, err
	}
	defer c.Stop()
	reg := workload.NewRegistry()
	if err := seedAFT(ctx, c.Nodes()[0], reg, keys, payload); err != nil {
		return table, err
	}
	c.FlushMulticast()

	platform, err := faas.New(faas.Config{
		Client:            c.Client(),
		Overhead:          opts.lambdaModel(),
		Sleeper:           opts.sleeper(),
		Seed:              opts.Seed,
		MaxRequestRetries: 10, // requests caught on the dying node redo elsewhere
	})
	if err != nil {
		return table, err
	}
	exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
	gens := make([]*workload.Generator, clients)
	for i := range gens {
		gens[i] = workload.NewGenerator(opts.Seed+int64(i),
			workload.NewZipf(opts.Seed+int64(2000+i), keys, zipf), 2, 1, 2)
	}

	// Drive clients for the whole timeline; sample throughput per second.
	done := make(chan error, 1)
	go func() {
		_, _, err := runForDuration(clients, time.Duration(totalPaperSeconds)*second, func(client int) error {
			_, err := exec.Execute(ctx, gens[client].Next())
			if errors.Is(err, faas.ErrRetriesExhausted) {
				return nil // lost in the failover window; client moves on
			}
			return err
		})
		done <- err
	}()

	// Each loop iteration is one paper-equivalent second, so the
	// per-bucket commit delta IS the paper-equivalent txn/s.
	prev := int64(0)
	killed := false
	joined := false
	for s := 1; s <= totalPaperSeconds; s++ {
		time.Sleep(second)
		event := ""
		if !killed && s >= killAtPaperSeconds {
			victim := c.Nodes()[0].ID()
			if err := c.Kill(victim); err != nil {
				return table, err
			}
			killed = true
			event = "node " + victim + " killed"
		}
		committed := platform.Metrics().Snapshot().Commits
		tps := float64(committed - prev)
		prev = committed
		nodes := len(c.Nodes())
		if event == "" && killed && !joined && nodes == 4 {
			event = "replacement joined"
			joined = true
		}
		// Only emit a subset of rows to keep the table readable.
		if event != "" || s%5 == 0 || s == 1 {
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%ds", s), fmt.Sprintf("%.0f", tps),
				fmt.Sprint(nodes), event,
			})
		}
	}
	if err := <-done; err != nil {
		return table, fmt.Errorf("fig10 clients: %w", err)
	}
	return table, nil
}
