package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/stats"
	"aft/internal/workload"
)

// Fig3Table2 reproduces Figure 3 and Table 2 (§6.1.2) in one run: the
// end-to-end latency of the canonical 2-function transaction (1 write + 2
// reads per function, 4 KB values, Zipf 1.0 over 1,000 keys, 10 parallel
// clients) across S3, DynamoDB, and Redis, under three architectures —
// Plain (direct storage access), Transactional (DynamoDB transaction
// mode), and AFT — plus the anomaly counts observed by each.
//
// Expected shapes: S3 dwarfs the other engines; AFT roughly matches Plain
// on DynamoDB (batching offsets the commit record) and adds a modest
// penalty on Redis (no batching available); AFT reports zero anomalies
// while the plain engines fracture several percent of transactions and
// DynamoDB-serializable still shows fractured reads across functions.
func Fig3Table2(opts Options) (Table, Table, error) {
	opts = opts.withDefaults()
	opts.spin = true // few clients: precise sub-ms latency injection
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const clients = 10
	perClient := opts.scaled(1000)
	const keys = 1000
	const zipf = 1.0

	fig3 := Table{
		Title:  "Figure 3: end-to-end 2-function transaction latency (ms, paper-equivalent)",
		Header: []string{"store", "config", "median", "p99"},
	}
	table2 := Table{
		Title:  "Table 2: anomalies over the Figure 3 runs",
		Header: []string{"engine", "consistency", "RYW anomalies", "FR anomalies", "requests"},
	}

	type cfg struct {
		store   storeKind
		arch    string // "plain" | "aft" | "txn"
		consist string
	}
	configs := []cfg{
		{kindS3, "plain", "None"},
		{kindS3, "aft", "Read Atomic"},
		{kindDynamo, "txn", "Serializable"},
		{kindDynamo, "plain", "None"},
		{kindDynamo, "aft", "Read Atomic"},
		{kindRedis, "plain", "Shard Linearizable"},
		{kindRedis, "aft", "Read Atomic"},
	}

	for _, c := range configs {
		if c.arch == "txn" && opts.Backend != "" && opts.Backend != string(kindDynamo) {
			// The transaction-mode baseline needs storage.Transactor,
			// which only the DynamoDB sim implements; under a -store
			// override to another backend, skip the row instead of
			// failing the whole sweep.
			fig3.Notes = append(fig3.Notes,
				fmt.Sprintf("Transactional row skipped: -store %s has no transaction mode", opts.Backend))
			continue
		}
		rec, anomalies, err := runArch(ctx, opts, c.store, c.arch, payload, clients, perClient, keys, zipf)
		if err != nil {
			return fig3, table2, fmt.Errorf("fig3 %s/%s: %w", c.store, c.arch, err)
		}
		s := rec.Summarize()
		label := map[string]string{"plain": "Plain", "aft": "AFT", "txn": "Transactional"}[c.arch]
		fig3.Rows = append(fig3.Rows, []string{string(c.store), label, ms(s.Median), ms(s.P99)})

		engine := string(c.store)
		if c.arch == "aft" {
			if c.store != kindDynamo {
				continue // Table 2 reports one AFT row (over DynamoDB)
			}
			engine = "aft"
		}
		table2.Rows = append(table2.Rows, []string{
			engine, c.consist,
			fmt.Sprint(anomalies.RYW), fmt.Sprint(anomalies.FracturedReads),
			fmt.Sprint(anomalies.Requests),
		})
	}
	return fig3, table2, nil
}

// runArch executes the canonical workload under one (store, architecture)
// pair and returns latencies plus anomaly counts.
func runArch(ctx context.Context, opts Options, kind storeKind, arch string, payload []byte,
	clients, perClient, keys int, zipf float64) (*stats.Recorder, workload.Anomalies, error) {

	store := opts.newStore(kind)
	reg := workload.NewRegistry()
	var collector workload.TraceCollector

	var exec baselines.Executor
	switch arch {
	case "plain":
		if err := seedPlain(ctx, store, reg, keys, payload); err != nil {
			return nil, workload.Anomalies{}, err
		}
		exec = baselines.NewPlain(baselines.PlainConfig{
			Store: store, Payload: payload, Registry: reg,
			Overhead: opts.lambdaModel(), Sleeper: opts.sleeper(),
		})
	case "txn":
		if err := seedPlain(ctx, store, reg, keys, payload); err != nil {
			return nil, workload.Anomalies{}, err
		}
		var err error
		exec, err = baselines.NewDynamoTxn(baselines.DynamoTxnConfig{
			Store: store, Payload: payload, Registry: reg,
			Overhead: opts.lambdaModel(), Sleeper: opts.sleeper(),
		})
		if err != nil {
			return nil, workload.Anomalies{}, err
		}
	case "aft":
		// The data cache stays off here: Figure 3 measures the bare shim
		// and Figure 4 studies caching separately.
		node, err := newNode("fig3-"+string(kind), store, false)
		if err != nil {
			return nil, workload.Anomalies{}, err
		}
		if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
			return nil, workload.Anomalies{}, err
		}
		platform, err := opts.newPlatform(node)
		if err != nil {
			return nil, workload.Anomalies{}, err
		}
		exec = baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
	default:
		return nil, workload.Anomalies{}, fmt.Errorf("unknown architecture %q", arch)
	}

	gens := make([]*workload.Generator, clients)
	for c := range gens {
		gens[c] = workload.NewGenerator(opts.Seed+int64(c), workload.NewZipf(opts.Seed+int64(100+c), keys, zipf), 2, 1, 2)
	}
	rawRec := stats.NewRecorder()
	_, err := runClients(clients, perClient, func(client, iter int) error {
		start := time.Now()
		tr, err := exec.Execute(ctx, gens[client].Next())
		if err != nil {
			return err
		}
		rawRec.Record(opts.rescale(time.Since(start)))
		collector.Add(tr)
		return nil
	})
	if err != nil {
		return nil, workload.Anomalies{}, err
	}
	return rawRec, workload.Check(collector.Traces(), reg), nil
}
