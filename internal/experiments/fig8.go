package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/workload"
)

// Fig8 reproduces Figure 8 (§6.5.2): aggregate throughput of multi-node
// deployments, 40 closed-loop clients per node, over DynamoDB and Redis,
// against the ideal (single-node throughput times node count).
//
// Expected shape: near-linear scaling within ~90% of ideal — the multicast
// and commit protocols keep nodes off each other's critical paths.
func Fig8(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const keys = 1000
	const zipf = 1.5
	const clientsPerNode = 40
	window := 1500 * time.Millisecond
	nodeCounts := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		window = 400 * time.Millisecond
		nodeCounts = []int{1, 2, 4}
	}

	table := Table{
		Title:  "Figure 8: distributed throughput, 40 clients/node (txn/s, paper-equivalent)",
		Header: []string{"store", "nodes", "clients", "throughput", "ideal", "of ideal"},
	}

	for _, kind := range []storeKind{kindDynamo, kindRedis} {
		var perNodeTPS float64
		for _, nodes := range nodeCounts {
			store := opts.newStore(kind)
			c, err := cluster.New(cluster.Config{
				Nodes: nodes,
				Store: store,
				Node: core.Config{
					EnableDataCache: true,
					MaxConcurrent:   nodeConcurrency,
				},
				MulticastPeriod: opts.multicastPeriod(),
				PruneMulticast:  true,
			})
			if err != nil {
				return table, err
			}
			if err := c.Start(ctx); err != nil {
				return table, err
			}
			// Seed through one member so all data is committed state.
			seedNode := c.Nodes()[0]
			reg := workload.NewRegistry()
			if err := seedAFT(ctx, seedNode, reg, keys, payload); err != nil {
				c.Stop()
				return table, err
			}
			c.FlushMulticast()

			platform, err := opts.newPlatform(c.Client())
			if err != nil {
				c.Stop()
				return table, err
			}
			exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})

			clients := clientsPerNode * nodes
			gens := make([]*workload.Generator, clients)
			for i := range gens {
				gens[i] = workload.NewGenerator(opts.Seed+int64(i),
					workload.NewZipf(opts.Seed+int64(1000+i), keys, zipf), 2, 1, 2)
			}
			count, elapsed, err := runForDuration(clients, window, func(client int) error {
				_, err := exec.Execute(ctx, gens[client].Next())
				return err
			})
			c.Stop()
			if err != nil {
				return table, fmt.Errorf("fig8 %s nodes=%d: %w", kind, nodes, err)
			}
			tps := opts.rescaleRate(float64(count) / elapsed.Seconds())
			if nodes == 1 {
				perNodeTPS = tps
			}
			ideal := perNodeTPS * float64(nodes)
			table.Rows = append(table.Rows, []string{
				string(kind), fmt.Sprint(nodes), fmt.Sprint(clients),
				fmt.Sprintf("%.0f", tps), fmt.Sprintf("%.0f", ideal),
				fmt.Sprintf("%.0f%%", 100*tps/ideal),
			})
		}
	}
	return table, nil
}

// multicastPeriod scales the paper's 1-second broadcast period to the
// experiment's time scale.
func (o Options) multicastPeriod() time.Duration {
	if o.Scale <= 0 {
		return 5 * time.Millisecond
	}
	return time.Duration(float64(time.Second) * o.Scale)
}
