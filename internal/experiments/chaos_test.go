package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChaosDeterministicAndCleanAcrossSeeds locks in the chaos
// experiment's acceptance bar: for a fixed seed the campaign is
// bit-for-bit deterministic (identical serialized cells, verdicts
// included), and across three seeds — each with at least one node kill and
// at least one partial batch-write failure — the checker returns a
// zero-anomaly verdict.
func TestChaosDeterministicAndCleanAcrossSeeds(t *testing.T) {
	opts := Options{Scale: 0, Quick: true, Seed: 42, Payload: 256}

	first, err := ChaosCells(opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ChaosCells(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos campaign is not deterministic for a fixed seed:\nrun 1: %s\nrun 2: %s", a, b)
	}

	if len(first) != 3 {
		t.Fatalf("ChaosCells returned %d cells, want 3 seeds", len(first))
	}
	for _, cell := range first {
		if !cell.Verdict.Clean() {
			t.Errorf("seed %d: %d anomalies: %s\n%v",
				cell.Seed, cell.Verdict.Anomalies(), cell.Verdict, cell.Verdict.Violations)
		}
		if cell.Kills < 1 {
			t.Errorf("seed %d: no node kill fired", cell.Seed)
		}
		if cell.Promotions != cell.Kills {
			t.Errorf("seed %d: %d kills but %d standby promotions", cell.Seed, cell.Kills, cell.Promotions)
		}
		if cell.PartialBatchPuts < 1 {
			t.Errorf("seed %d: no partial batch-write failure injected", cell.Seed)
		}
		if cell.InjectedErrors < 1 {
			t.Errorf("seed %d: no transient error injected", cell.Seed)
		}
		if cell.Committed < int64(cell.Requests) {
			t.Errorf("seed %d: committed %d < %d requests", cell.Seed, cell.Committed, cell.Requests)
		}
		if cell.RecoveredRecords < 1 {
			t.Errorf("seed %d: the fault manager's storage scan never recovered a record", cell.Seed)
		}
		if cell.Verdict.FinalKeys == 0 || cell.Verdict.Reads == 0 {
			t.Errorf("seed %d: checker saw no history (reads=%d final=%d)",
				cell.Seed, cell.Verdict.Reads, cell.Verdict.FinalKeys)
		}
		// The flight recorder is attached as verdict evidence: every
		// kill and promotion must appear as a journal line.
		kills, promotions := 0, 0
		for _, line := range cell.Journal {
			if strings.HasPrefix(line, "node_kill ") {
				kills++
			}
			if strings.HasPrefix(line, "standby_promotion ") {
				promotions++
			}
		}
		if kills != cell.Kills || promotions != cell.Promotions {
			t.Errorf("seed %d: journal records %d kills / %d promotions, counters say %d / %d:\n%v",
				cell.Seed, kills, promotions, cell.Kills, cell.Promotions, cell.Journal)
		}
	}

	tbl, err := ChaosTable(first)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 3)
}
