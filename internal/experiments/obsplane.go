package experiments

import (
	"fmt"
	"time"

	"aft/internal/core"
	"aft/internal/stats"
	"aft/internal/storage/dynamosim"
	"aft/internal/telemetry"
	"aft/internal/workload"
)

// ObsPlane measures what the FULL observability plane costs on the hot
// path: the telemetry experiment's commit-heavy workload runs once with
// telemetry disabled and once under the complete cmd/aft-server
// production plane — latency histograms, a 1-in-64 self-sampling tracer
// forwarding every kept trace to a cluster TraceCollector, the
// flight-recorder event journal, and a ticking SLO burn-rate engine.
// The instrumented mode must hold at least ~90% of the uninstrumented
// throughput (the BENCH json records the measured ratio); the run also
// proves the plane carries real data by recording how many stitched
// traces, forwarded segments, and journal events the pass produced and
// what the SLO engine concluded about it.
//
// Like the telemetry experiment this uses the zero-latency simulated
// backend, so every instrumentation cycle lands on the measured path:
// the ratio is an upper bound on the overhead a real deployment sees.
func ObsPlane(opts Options) (Table, error) {
	cells, err := ObsPlaneCells(opts)
	if err != nil {
		return Table{}, err
	}
	return ObsPlaneTable(cells)
}

// ObsPlaneCell is one instrumentation mode's measurement.
type ObsPlaneCell struct {
	Mode          string  `json:"mode"` // "off" | "obsplane"
	Txns          int     `json:"txns"`
	Workers       int     `json:"workers"`
	ThroughputTPS float64 `json:"throughput_tps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// RelativeThroughput is this mode's throughput over the "off"
	// baseline's (1.0 = free instrumentation; the gate is >= 0.90).
	RelativeThroughput float64 `json:"relative_throughput"`
	// Plane volume, instrumented mode only: evidence the measured pass
	// actually exercised the whole plane.
	TracesForwarded uint64            `json:"traces_forwarded,omitempty"`
	StitchedTraces  int               `json:"stitched_traces,omitempty"`
	EventsRecorded  uint64            `json:"events_recorded,omitempty"`
	SLOVerdicts     map[string]string `json:"slo_verdicts,omitempty"`
}

// ObsPlaneCells runs both modes and returns their measurements. The
// timed passes are interleaved (off pass 1, obsplane pass 1, off pass
// 2, ...) and each mode keeps its best pass, exactly like the telemetry
// experiment, so process drift lands on both modes evenly. Every pass
// runs on a fresh node over a fresh zero-latency backend.
func ObsPlaneCells(opts Options) ([]ObsPlaneCell, error) {
	opts = opts.withDefaults()
	txns := opts.scaled(12000)
	const workers = 8
	const reps = 3

	keys := workload.NewZipf(opts.Seed, 512, 1.1)
	keysOf := make([][]string, txns)
	for i := range keysOf {
		keysOf[i] = []string{keys.Next(), keys.Next()}
	}
	payload := workload.Payload(opts.Seed, opts.Payload)

	runs := []*obsplaneRun{{mode: "off"}, {mode: "obsplane"}}
	// One discarded warm-up pass per mode, then interleaved timed passes.
	for _, r := range runs {
		if err := r.pass(keysOf, payload, workers); err != nil {
			return nil, err
		}
	}
	for _, r := range runs {
		r.bestTPS = 0
	}
	for rep := 0; rep < reps; rep++ {
		for _, r := range runs {
			if err := r.pass(keysOf, payload, workers); err != nil {
				return nil, err
			}
		}
	}

	cells := make([]ObsPlaneCell, 0, len(runs))
	for _, r := range runs {
		cell := ObsPlaneCell{
			Mode: r.mode, Txns: txns, Workers: workers,
			ThroughputTPS: r.bestTPS,
			P50Ms:         stats.Millis(r.bestSum.Median),
			P99Ms:         stats.Millis(r.bestSum.P99),
		}
		if r.mode == "obsplane" && r.bestPlane != nil {
			p := r.bestPlane
			cell.TracesForwarded, _, _ = p.collector.Stats()
			cell.StitchedTraces = len(p.collector.Snapshot())
			cell.EventsRecorded, _ = p.events.Stats()
			p.slo.Tick()
			cell.SLOVerdicts = map[string]string{}
			for _, oh := range p.slo.Evaluate() {
				cell.SLOVerdicts[oh.Name] = oh.Verdict
			}
		}
		cells = append(cells, cell)
	}
	base := cells[0].ThroughputTPS
	for i := range cells {
		if base > 0 {
			cells[i].RelativeThroughput = cells[i].ThroughputTPS / base
		}
	}
	return cells, nil
}

// obsplane bundles one pass's full observability plane.
type obsplane struct {
	tracer    *telemetry.Tracer
	collector *telemetry.TraceCollector
	events    *telemetry.Journal
	slo       *telemetry.SLOEngine
}

// obsplaneRun is one mode plus its best pass so far.
type obsplaneRun struct {
	mode      string
	bestTPS   float64
	bestSum   stats.Summary
	bestPlane *obsplane
}

// pass builds a fresh node (with or without the plane), drives one
// timed pass, and keeps the result if it beats the run's best.
func (r *obsplaneRun) pass(keysOf [][]string, payload []byte, workers int) error {
	cfg := core.Config{
		NodeID:          "obsplane-" + r.mode,
		Store:           dynamosim.New(dynamosim.Options{}),
		EnableDataCache: true,
	}
	var plane *obsplane
	switch r.mode {
	case "off":
		cfg.DisableTelemetry = true
	case "obsplane":
		plane = &obsplane{
			collector: telemetry.NewTraceCollector(0),
			events:    telemetry.NewJournal(telemetry.JournalOptions{}),
			slo:       telemetry.NewSLOEngine(telemetry.SLOOptions{}),
		}
		plane.tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Node: cfg.NodeID, SampleEvery: 64,
		})
		plane.tracer.SetSink(plane.collector)
		cfg.Tracer = plane.tracer
		cfg.Events = plane.events
	default:
		return fmt.Errorf("obsplane: unknown mode %q", r.mode)
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		return err
	}
	if plane != nil {
		plane.slo.AddObjective(telemetry.Objective{
			Name: "commit_latency", Target: 0.99,
			SLI: telemetry.LatencySLI(node.CommitLatency, 250*time.Millisecond),
		})
		m := node.Metrics()
		plane.slo.AddObjective(telemetry.Objective{
			Name: "shed_ratio", Target: 0.99,
			SLI: telemetry.RatioSLI(
				func() uint64 { return uint64(m.OverloadShed.Load()) },
				func() uint64 { return uint64(m.Started.Load() + m.OverloadShed.Load()) },
			),
		})
		// The engine samples off the hot path in production (Run); here
		// it ticks around the pass so Evaluate has a window to grade.
		plane.slo.Tick()
	}
	tps, sum, err := telemetryPass(node, keysOf, payload, workers)
	if err != nil {
		return err
	}
	if tps > r.bestTPS {
		r.bestTPS, r.bestSum, r.bestPlane = tps, sum, plane
	}
	return nil
}

// ObsPlaneTable renders the overhead comparison.
func ObsPlaneTable(cells []ObsPlaneCell) (Table, error) {
	t := Table{
		Title:  "Observability plane overhead: full plane vs telemetry off",
		Header: []string{"mode", "txns", "tps", "p50 (ms)", "p99 (ms)", "vs off", "stitched", "events"},
		Notes: []string{
			"obsplane = histograms + 1-in-64 tracing + collector stitching + event journal + SLO engine",
			"zero-latency backend: upper-bound overhead; the gate is vs-off >= 0.90",
		},
	}
	for _, c := range cells {
		stitched, events := "-", "-"
		if c.Mode == "obsplane" {
			stitched = fmt.Sprintf("%d", c.StitchedTraces)
			events = fmt.Sprintf("%d", c.EventsRecorded)
		}
		t.Rows = append(t.Rows, []string{
			c.Mode,
			fmt.Sprintf("%d", c.Txns),
			fmt.Sprintf("%.0f", c.ThroughputTPS),
			fmt.Sprintf("%.3f", c.P50Ms),
			fmt.Sprintf("%.3f", c.P99Ms),
			fmt.Sprintf("%.3f", c.RelativeThroughput),
			stitched,
			events,
		})
	}
	return t, nil
}
