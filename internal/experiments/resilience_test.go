package experiments

import (
	"reflect"
	"testing"
)

// TestResilienceCellsDeterministic is the campaign's reproducibility
// contract: for a fixed seed and scale, every field outside the
// `measured` sub-struct is bit-for-bit identical across runs — same
// commits, same redo count, same injected-fault totals, same number of
// reaped abandoned transactions, same verdict. Wall-clock numbers live
// only in Measured, which is zeroed before comparison.
func TestResilienceCellsDeterministic(t *testing.T) {
	opts := Options{Scale: 0, Quick: true, Seed: 77}
	run := func() []ResilienceCell {
		cells, err := ResilienceCells(opts)
		if err != nil {
			t.Fatalf("resilience campaign: %v", err)
		}
		for i := range cells {
			cells[i].Measured = ResilienceMeasured{}
		}
		return cells
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed campaigns diverged:\nrun A: %+v\nrun B: %+v", a, b)
	}

	for _, c := range a {
		if !c.Verdict.Clean() {
			t.Fatalf("seed %d verdict not clean: %s", c.Seed, c.Verdict)
		}
		if c.LeakedGoroutines != 0 {
			t.Fatalf("seed %d leaked %d goroutines", c.Seed, c.LeakedGoroutines)
		}
		if c.Partitions != 2 || c.Heals != 2 {
			t.Fatalf("seed %d partitions/heals = %d/%d, want 2/2", c.Seed, c.Partitions, c.Heals)
		}
		if c.ConnResets != 3 {
			t.Fatalf("seed %d conn resets = %d, want 3", c.Seed, c.ConnResets)
		}
		if c.SwallowedWrites == 0 {
			t.Fatalf("seed %d: outbound partition swallowed nothing", c.Seed)
		}
		if c.Shed != resilienceQueue {
			t.Fatalf("seed %d shed = %d, want %d (slots and queue all held)", c.Seed, c.Shed, resilienceQueue)
		}
		if c.Reaped == 0 {
			t.Fatalf("seed %d: lost acks left no abandoned transactions to reap", c.Seed)
		}
		if c.Redos == 0 {
			t.Fatalf("seed %d: campaign survived without a single redo (faults injected nothing)", c.Seed)
		}
	}
}
