package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aft/internal/core"
	"aft/internal/stats"
	"aft/internal/storage/dynamosim"
	"aft/internal/telemetry"
	"aft/internal/workload"
)

// Telemetry measures what the observability substrate costs on the hot
// path: the same commit-heavy workload runs with telemetry fully off
// (Config.DisableTelemetry, no tracer), with latency histograms on (the
// default), and with histograms plus 1-in-64 self-sampled tracing — the
// production configuration of cmd/aft-server. Histograms are three atomic
// adds per operation and tracing adds a pointer check plus one span per
// traced op, so instrumented throughput should sit within a few percent
// of the uninstrumented baseline; the BENCH json records the measured
// ratio along with the commit-latency histogram digests the instrumented
// runs produce.
//
// The run uses the zero-latency simulated backend deliberately: with no
// storage waits to hide behind, every instrumentation cycle lands on the
// measured path, making this an upper bound on the overhead.
func Telemetry(opts Options) (Table, error) {
	cells, err := TelemetryCells(opts)
	if err != nil {
		return Table{}, err
	}
	return TelemetryTable(cells)
}

// HistDigest is a compact latency-histogram summary recorded into
// BENCH_telemetry.json (and reusable by other experiments).
type HistDigest struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// digestOf summarizes a histogram snapshot.
func digestOf(s telemetry.HistogramSnapshot) HistDigest {
	return HistDigest{
		Count:      s.Count,
		SumSeconds: s.Sum.Seconds(),
		P50Ms:      float64(s.Quantile(0.50)) / float64(time.Millisecond),
		P99Ms:      float64(s.Quantile(0.99)) / float64(time.Millisecond),
	}
}

// TelemetryCell is one instrumentation mode's measurement.
type TelemetryCell struct {
	Mode          string  `json:"mode"` // "off" | "histograms" | "histograms+tracing"
	Txns          int     `json:"txns"`
	Workers       int     `json:"workers"`
	ThroughputTPS float64 `json:"throughput_tps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// RelativeThroughput is this mode's throughput over the "off"
	// baseline's (1.0 = free instrumentation).
	RelativeThroughput float64 `json:"relative_throughput"`
	// Histogram digests from the node's own instrumentation (instrumented
	// modes only) — the evidence the /metrics histograms carry real data.
	CommitHist *HistDigest `json:"commit_hist,omitempty"`
	ReadHist   *HistDigest `json:"read_hist,omitempty"`
	// Tracing volume (tracing mode only).
	TracesStarted uint64 `json:"traces_started,omitempty"`
	TracesKept    uint64 `json:"traces_kept,omitempty"`
}

// TelemetryCells runs the three instrumentation modes and returns their
// measurements. The modes' timed passes are interleaved (mode A pass 1,
// mode B pass 1, ..., mode A pass 2, ...) and each mode keeps its best
// pass, so process-level drift — allocator growth, background GC — lands
// on every mode instead of whichever ran first.
func TelemetryCells(opts Options) ([]TelemetryCell, error) {
	opts = opts.withDefaults()
	txns := opts.scaled(12000)
	const workers = 8
	const reps = 3

	keys := workload.NewZipf(opts.Seed, 512, 1.1)
	keysOf := make([][]string, txns)
	for i := range keysOf {
		keysOf[i] = []string{keys.Next(), keys.Next()}
	}
	payload := workload.Payload(opts.Seed, opts.Payload)

	modes := []string{"off", "histograms", "histograms+tracing"}
	runs := make([]*telemetryRun, 0, len(modes))
	for _, mode := range modes {
		runs = append(runs, &telemetryRun{mode: mode})
	}

	// Every pass runs on a FRESH node: without the maintenance pipeline
	// nothing prunes commit metadata, so a long-lived node's reads slow
	// down with accumulated versions and the drift would drown the
	// instrumentation signal. One discarded warm-up pass per mode, then
	// the interleaved timed passes; each mode keeps its best
	// (least-interfered) pass.
	for _, r := range runs {
		if err := r.pass(keysOf, payload, workers); err != nil {
			return nil, err
		}
	}
	for _, r := range runs {
		r.bestTPS = 0
	}
	for rep := 0; rep < reps; rep++ {
		for _, r := range runs {
			if err := r.pass(keysOf, payload, workers); err != nil {
				return nil, err
			}
		}
	}

	cells := make([]TelemetryCell, 0, len(runs))
	for _, r := range runs {
		cell := TelemetryCell{
			Mode: r.mode, Txns: txns, Workers: workers,
			ThroughputTPS: r.bestTPS,
			P50Ms:         stats.Millis(r.bestSum.Median),
			P99Ms:         stats.Millis(r.bestSum.P99),
		}
		if r.mode != "off" {
			ch := digestOf(r.bestNode.CommitLatency())
			rh := digestOf(r.bestNode.ReadLatency())
			cell.CommitHist, cell.ReadHist = &ch, &rh
		}
		if r.bestTracer != nil {
			cell.TracesStarted, cell.TracesKept, _ = r.bestTracer.Stats()
		}
		cells = append(cells, cell)
	}
	base := cells[0].ThroughputTPS
	for i := range cells {
		if base > 0 {
			cells[i].RelativeThroughput = cells[i].ThroughputTPS / base
		}
	}
	return cells, nil
}

// telemetryRun is one instrumentation mode plus its best pass so far.
type telemetryRun struct {
	mode       string
	bestTPS    float64
	bestSum    stats.Summary
	bestNode   *core.Node
	bestTracer *telemetry.Tracer
}

// pass builds a fresh node for the run's mode over a fresh zero-latency
// simulated backend, drives one timed pass on it, and keeps the result
// if it beats the run's best.
func (r *telemetryRun) pass(keysOf [][]string, payload []byte, workers int) error {
	cfg := core.Config{
		NodeID:          "telemetry-" + r.mode,
		Store:           dynamosim.New(dynamosim.Options{}),
		EnableDataCache: true,
	}
	var tracer *telemetry.Tracer
	switch r.mode {
	case "off":
		cfg.DisableTelemetry = true
	case "histograms":
	case "histograms+tracing":
		tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Node: cfg.NodeID, SampleEvery: 64,
		})
		cfg.Tracer = tracer
	default:
		return fmt.Errorf("telemetry: unknown mode %q", r.mode)
	}
	node, err := core.NewNode(cfg)
	if err != nil {
		return err
	}
	tps, sum, err := telemetryPass(node, keysOf, payload, workers)
	if err != nil {
		return err
	}
	if tps > r.bestTPS {
		r.bestTPS, r.bestSum = tps, sum
		r.bestNode, r.bestTracer = node, tracer
	}
	return nil
}

// telemetryPass drives every transaction in keysOf once across workers
// and returns the pass's throughput and latency summary. Per-commit
// latency is measured with the same external recorder in every mode, so
// recorder overhead cancels out of the comparison.
func telemetryPass(node *core.Node, keysOf [][]string, payload []byte, workers int) (float64, stats.Summary, error) {
	txns := len(keysOf)
	rec := stats.NewRecorder()
	ctx := context.Background()
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < txns; i += workers {
				t0 := time.Now()
				if err := runTelemetryTxn(ctx, node, keysOf[i], payload); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				rec.Record(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, stats.Summary{}, firstErr
	}
	return float64(txns) / elapsed.Seconds(), rec.Summarize(), nil
}

// runTelemetryTxn is one workload transaction: read two keys (one
// MultiGet), write both, commit.
func runTelemetryTxn(ctx context.Context, node *core.Node, keys []string, payload []byte) error {
	txid, err := node.StartTransaction(ctx)
	if err != nil {
		return err
	}
	if _, err := node.MultiGet(ctx, txid, keys); err != nil &&
		!errors.Is(err, core.ErrKeyNotFound) {
		node.AbortTransaction(ctx, txid)
		return err
	}
	for _, k := range keys {
		if err := node.Put(ctx, txid, k, payload); err != nil {
			node.AbortTransaction(ctx, txid)
			return err
		}
	}
	_, err = node.CommitTransaction(ctx, txid)
	return err
}

// TelemetryTable renders the overhead comparison.
func TelemetryTable(cells []TelemetryCell) (Table, error) {
	t := Table{
		Title:  "Telemetry overhead: instrumented vs uninstrumented commit throughput",
		Header: []string{"mode", "txns", "tps", "p50 (ms)", "p99 (ms)", "vs off", "hist count", "traces kept"},
		Notes: []string{
			"zero-latency backend: every instrumentation cycle lands on the measured path (upper-bound overhead)",
			"histograms: three atomic adds per op; tracing: 1-in-64 self-sampled spans",
		},
	}
	for _, c := range cells {
		histCount := "-"
		if c.CommitHist != nil {
			histCount = fmt.Sprintf("%d", c.CommitHist.Count)
		}
		kept := "-"
		if c.Mode == "histograms+tracing" {
			kept = fmt.Sprintf("%d/%d", c.TracesKept, c.TracesStarted)
		}
		t.Rows = append(t.Rows, []string{
			c.Mode,
			fmt.Sprintf("%d", c.Txns),
			fmt.Sprintf("%.0f", c.ThroughputTPS),
			fmt.Sprintf("%.3f", c.P50Ms),
			fmt.Sprintf("%.3f", c.P99Ms),
			fmt.Sprintf("%.3f", c.RelativeThroughput),
			histCount,
			kept,
		})
	}
	return t, nil
}
