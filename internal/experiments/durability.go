package experiments

// durability.go measures the WAL storage engine's three claims: it keeps
// throughput in the same league as the in-memory engines by coalescing
// fsyncs (group fsync), it recovers a log of any size by replay, and —
// the headline — AFT over it survives storage-process crashes: a seeded
// chaos campaign crashes the engine mid-workload (Close-then-Reopen at
// exact storage-op indices, landing inside commit protocols), and the
// history checker's lost-write audit proves no acknowledged transaction
// vanished.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"aft/internal/chaos"
	"aft/internal/checker"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/storage"
	"aft/internal/storage/dynamosim"
	"aft/internal/storage/walengine"
	"aft/internal/workload"
)

// Durability runs the full experiment and renders its table.
func Durability(opts Options) (Table, error) {
	cells, err := DurabilityCells(opts)
	if err != nil {
		return Table{}, err
	}
	return DurabilityTable(cells)
}

// DurabilityCell is one measurement, exposed for BENCH_durability.json.
// Scenario selects which fields are meaningful:
//
//   - "throughput": Engine, Writers, Ops, OpsPerSec, and (wal only) the
//     fsync-coalescing evidence;
//   - "recovery": Entries, LogBytes, Segments, RecoveryMS, ReplayedRecords;
//   - "campaign": one seed's crash campaign — workload outcome, injected
//     faults, storage crashes, node kills, WAL work, and the verdict.
type DurabilityCell struct {
	Scenario string `json:"scenario"`

	// Throughput.
	Engine    string  `json:"engine,omitempty"`
	Writers   int     `json:"writers,omitempty"`
	Ops       int64   `json:"ops,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`

	// WAL evidence (throughput and campaign).
	Appends         int64   `json:"appends,omitempty"`
	Fsyncs          int64   `json:"fsyncs,omitempty"`
	AppendsPerFsync float64 `json:"appends_per_fsync,omitempty"`
	Compactions     int64   `json:"compactions,omitempty"`
	BytesReclaimed  int64   `json:"bytes_reclaimed,omitempty"`

	// Recovery.
	Entries         int     `json:"entries,omitempty"`
	LogBytes        int64   `json:"log_bytes,omitempty"`
	Segments        int     `json:"segments,omitempty"`
	RecoveryMS      float64 `json:"recovery_ms,omitempty"`
	ReplayedRecords int64   `json:"replayed_records,omitempty"`

	// Campaign.
	Seed             int64            `json:"seed,omitempty"`
	Requests         int              `json:"requests,omitempty"`
	Committed        int64            `json:"committed,omitempty"`
	Redos            int64            `json:"redos,omitempty"`
	CommitRetries    int64            `json:"commit_retries,omitempty"`
	StorageCrashes   int              `json:"storage_crashes,omitempty"`
	Kills            int              `json:"kills,omitempty"`
	Promotions       int              `json:"promotions,omitempty"`
	InjectedErrors   int64            `json:"injected_errors,omitempty"`
	PartialBatchPuts int64            `json:"partial_batch_puts,omitempty"`
	RecoveredRecords int64            `json:"recovered_records,omitempty"`
	Verdict          *checker.Verdict `json:"verdict,omitempty"`
}

// DurabilityTable renders measured cells.
func DurabilityTable(cells []DurabilityCell) (Table, error) {
	table := Table{
		Title: "Durability: WAL engine throughput, recovery, and storage-crash campaign",
		Header: []string{"scenario", "detail", "ops", "ops/s", "appends/fsync",
			"recovery ms", "crashes", "kills", "anomalies", "verdict"},
		Notes: []string{
			"throughput: concurrent writers; the wal engine acknowledges only after fsync, coalesced by the group-fsync window",
			"recovery: Close + Reopen of a populated log; replay rebuilds the index at the reported cost",
			"campaign: seeded chaos with Close-then-Reopen storage crashes landing at exact storage-op indices mid-protocol",
			"verdict: the history checker's full replay + final-state lost-write audit (commits acked before a crash included)",
		},
	}
	for _, c := range cells {
		detail, recovery, crashes, kills, anomalies, verdict := "", "-", "-", "-", "-", "-"
		switch c.Scenario {
		case "throughput":
			detail = fmt.Sprintf("%s, %d writers", c.Engine, c.Writers)
		case "recovery":
			detail = fmt.Sprintf("%d entries, %d segs", c.Entries, c.Segments)
			recovery = fmt.Sprintf("%.1f", c.RecoveryMS)
		case "campaign":
			detail = fmt.Sprintf("seed %d, %d reqs", c.Seed, c.Requests)
			crashes = fmt.Sprint(c.StorageCrashes)
			kills = fmt.Sprint(c.Kills)
			anomalies = fmt.Sprint(c.Verdict.Anomalies())
			if c.Verdict.Clean() {
				verdict = "CLEAN"
			} else {
				verdict = "ANOMALOUS"
			}
		}
		apf := "-"
		if c.AppendsPerFsync > 0 {
			apf = fmt.Sprintf("%.1f", c.AppendsPerFsync)
		}
		ops := "-"
		if c.Ops > 0 {
			ops = fmt.Sprint(c.Ops)
		}
		opsPerSec := "-"
		if c.OpsPerSec > 0 {
			opsPerSec = fmt.Sprintf("%.0f", c.OpsPerSec)
		}
		table.Rows = append(table.Rows, []string{
			c.Scenario, detail, ops, opsPerSec, apf, recovery, crashes, kills, anomalies, verdict,
		})
	}
	return table, nil
}

// DurabilityCells runs every scenario: two throughput cells (wal vs
// memory), a recovery sweep, and one crash campaign per seed (opts.Seed,
// +1, +2) — the acceptance bar is a zero-anomaly verdict with at least one
// mid-run storage crash in each.
func DurabilityCells(opts Options) ([]DurabilityCell, error) {
	opts = opts.withDefaults()
	var cells []DurabilityCell
	for _, engine := range []string{"wal", "memory"} {
		cell, err := runDurabilityThroughput(opts, engine)
		if err != nil {
			return cells, fmt.Errorf("durability throughput %s: %w", engine, err)
		}
		cells = append(cells, cell)
	}
	for _, entries := range []int{opts.scaled(2000), opts.scaled(8000), opts.scaled(24000)} {
		cell, err := runDurabilityRecovery(opts, entries)
		if err != nil {
			return cells, fmt.Errorf("durability recovery %d: %w", entries, err)
		}
		cells = append(cells, cell)
	}
	for i := int64(0); i < 3; i++ {
		cell, err := runDurabilityCampaign(opts, opts.Seed+i)
		if err != nil {
			return cells, fmt.Errorf("durability campaign seed %d: %w", opts.Seed+i, err)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// walDir creates a temp log directory and returns it with its cleanup.
func walDir() (string, func(), error) {
	dir, err := os.MkdirTemp("", "aft-durability-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// runDurabilityThroughput drives concurrent writers at a bare store:
// "wal" acknowledges after group-coalesced fsyncs, "memory" (the
// latency-free DynamoDB sim, i.e. the shared kvengine core) acknowledges
// from RAM. The wal cell's AppendsPerFsync is the coalescing evidence —
// it must exceed 1 under concurrent load.
func runDurabilityThroughput(opts Options, engine string) (DurabilityCell, error) {
	ctx := context.Background()
	cell := DurabilityCell{Scenario: "throughput", Engine: engine,
		Writers: 8, Ops: int64(8 * opts.scaled(400))}
	perWriter := int(cell.Ops) / cell.Writers

	var st storage.Store
	var wal *walengine.Store
	switch engine {
	case "wal":
		dir, cleanup, err := walDir()
		if err != nil {
			return cell, err
		}
		defer cleanup()
		wal, err = walengine.Open(dir, walengine.Options{})
		if err != nil {
			return cell, err
		}
		defer wal.Close()
		st = wal
	default:
		st = dynamosim.New(dynamosim.Options{})
	}

	payload := workload.Payload(opts.Seed, opts.Payload)
	var wg, release sync.WaitGroup
	release.Add(1)
	errs := make(chan error, cell.Writers)
	for w := 0; w < cell.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			release.Wait() // all writers start together
			for i := 0; i < perWriter; i++ {
				if err := st.Put(ctx, fmt.Sprintf("t-%d-%d", w, i%64), payload); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	start := time.Now()
	release.Done()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return cell, err
	}
	cell.OpsPerSec = float64(cell.Ops) / elapsed.Seconds()
	if wal != nil {
		w := wal.WAL().Snapshot()
		cell.Appends, cell.Fsyncs, cell.AppendsPerFsync = w.Appends, w.Fsyncs, w.AppendsPerFsync
		cell.Compactions, cell.BytesReclaimed = w.Compactions, w.BytesReclaimed
	}
	return cell, nil
}

// runDurabilityRecovery populates a log with entries keys, closes it, and
// measures the replay cost of reopening — recovery time versus log size.
func runDurabilityRecovery(opts Options, entries int) (DurabilityCell, error) {
	ctx := context.Background()
	cell := DurabilityCell{Scenario: "recovery", Entries: entries}
	dir, cleanup, err := walDir()
	if err != nil {
		return cell, err
	}
	defer cleanup()
	// Small segments so recovery spans a multi-segment log even at the
	// quick-mode sweep sizes; 256-byte values keep the sweep about log
	// STRUCTURE, not disk volume.
	st, err := walengine.Open(dir, walengine.Options{SegmentBytes: 32 << 10, DisableAutoCompact: true})
	if err != nil {
		return cell, err
	}
	defer st.Close()
	payload := workload.Payload(opts.Seed, 256)
	const chunk = 64
	batch := make(map[string][]byte, chunk)
	for i := 0; i < entries; i++ {
		batch[fmt.Sprintf("r-%07d", i)] = payload
		if len(batch) == chunk || i == entries-1 {
			if err := st.BatchPut(ctx, batch); err != nil {
				return cell, err
			}
			batch = make(map[string][]byte, chunk)
		}
	}
	if err := st.Close(); err != nil {
		return cell, err
	}
	sizes, err := os.ReadDir(dir)
	if err != nil {
		return cell, err
	}
	for _, e := range sizes {
		if info, err := e.Info(); err == nil {
			cell.LogBytes += info.Size()
		}
	}
	cell.Segments = len(sizes)
	before := st.WAL().Snapshot().ReplayedRecords
	start := time.Now()
	if err := st.Reopen(); err != nil {
		return cell, err
	}
	cell.RecoveryMS = float64(time.Since(start).Microseconds()) / 1000
	cell.ReplayedRecords = st.WAL().Snapshot().ReplayedRecords - before
	if got := st.Len(); got != entries {
		return cell, fmt.Errorf("replay recovered %d keys, want %d", got, entries)
	}
	return cell, nil
}

// durability campaign shape (the chaos campaign's, with storage crashes).
const (
	durNodes   = 3
	durKeys    = 96
	durSeedPer = 16
	durMaint   = 20
)

// runDurabilityCampaign runs one seed's storage-crash campaign: the
// canonical workload over a cluster whose store is the chaos-wrapped WAL
// engine, with transient faults and partial batches injected, node kills
// with standby promotion, and — new here — Close-then-Reopen crashes of
// the storage engine itself at storage-op indices derived from the
// observed per-request op rate, so they land mid-protocol. The checker
// then proves no acknowledged commit vanished.
func runDurabilityCampaign(opts Options, seed int64) (DurabilityCell, error) {
	ctx := context.Background()
	requests := opts.ChaosRequests
	if requests <= 0 {
		requests = 140
		if opts.Quick {
			requests = 40
		}
	}
	kills := opts.ChaosKills
	if kills <= 0 {
		kills = 1
	}
	const storageCrashes = 2
	cell := DurabilityCell{Scenario: "campaign", Seed: seed, Requests: requests}

	dir, cleanup, err := walDir()
	if err != nil {
		return cell, err
	}
	defer cleanup()
	// Small segments + eager compaction keep the log-management machinery
	// (rolls, rewrites, reclaim) in play underneath the injected faults.
	wal, err := walengine.Open(dir, walengine.Options{
		SegmentBytes:        128 << 10,
		CompactGarbageBytes: 256 << 10,
	})
	if err != nil {
		return cell, err
	}
	defer wal.Close()

	errRate, partialRate, spikeRate := opts.chaosFaultRates()
	st := chaos.Wrap(wal, chaos.Config{
		Seed:        seed,
		ErrorRate:   errRate,
		PartialRate: partialRate,
		SpikeRate:   spikeRate,
		Spike:       20 * time.Millisecond,
		Sleeper:     opts.sleeper(),
	})

	c, err := cluster.New(cluster.Config{
		Nodes:           durNodes,
		Standbys:        kills,
		Store:           st,
		Node:            core.Config{EnableDataCache: true, IDEntropySeed: seed},
		Clock:           idgen.NewVirtualClock(chaosEpoch, 1),
		MulticastPeriod: time.Hour,
		PruneMulticast:  true,
	})
	if err != nil {
		return cell, err
	}
	if err := c.Start(ctx); err != nil {
		return cell, err
	}
	defer c.Stop()

	check := checker.New()
	runner := &chaos.Runner{
		Client:  c.Client(),
		Payload: workload.Payload(seed, opts.Payload),
		Check:   check,
	}
	seedRequests := 0
	for start := 0; start < durKeys; start += durSeedPer {
		var ops []workload.Op
		for i := start; i < start+durSeedPer && i < durKeys; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: workload.KeyName(i)})
		}
		if err := runner.Do(ctx, workload.Request{Funcs: [][]workload.Op{ops}}); err != nil {
			return cell, fmt.Errorf("seeding: %w", err)
		}
		seedRequests++
	}
	c.FlushMulticast()

	// Derive the crash gap from the measured op rate: crashes spread
	// across the middle of the run, each firing mid-operation-stream.
	opsPerReq := st.Ops() / int64(seedRequests)
	gap := opsPerReq * int64(requests) / (storageCrashes + 2)
	if gap < 8 {
		gap = 8
	}
	plan := chaos.ScheduleStorageCrashes(st, wal, storageCrashes, gap)

	st.SetEnabled(true)
	sched := chaos.NewScheduler(c, seed, chaos.PlanKills(seed, kills, requests/5, 4*requests/5))
	gen := workload.NewGenerator(seed, workload.NewZipf(seed+100, durKeys, 1.0), 2, 2, 2)
	for i := 0; i < requests; i++ {
		if err := runner.Do(ctx, gen.Next()); err != nil {
			return cell, fmt.Errorf("request %d: %w", i, err)
		}
		if err := plan.Err(); err != nil {
			return cell, err
		}
		if err := sched.Tick(ctx, i+1); err != nil {
			return cell, err
		}
		if (i+1)%durMaint == 0 {
			if err := chaosMaintenance(ctx, c); err != nil {
				return cell, err
			}
		}
	}

	// Quiesce: faults off, one final CLEAN restart of the storage engine
	// (cold replay of the whole surviving log), recovery, then the audit.
	st.SetEnabled(false)
	if err := wal.Close(); err != nil {
		return cell, err
	}
	if err := wal.Reopen(); err != nil {
		return cell, err
	}
	if err := chaosMaintenance(ctx, c); err != nil {
		return cell, err
	}
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		return cell, err
	}
	keys := make([]string, durKeys)
	for i := range keys {
		keys[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keys)
	if err != nil {
		return cell, err
	}
	verdict := check.Verdict(final)
	cell.Verdict = &verdict

	rm := runner.Metrics().Snapshot()
	cell.Committed = rm.Commits
	cell.Redos = rm.Redos
	cell.CommitRetries = rm.CommitRetries
	cell.StorageCrashes = plan.Crashes()
	cell.Kills = sched.Kills()
	cell.Promotions = sched.Promotions()
	fm := st.FaultMetrics().Snapshot()
	cell.InjectedErrors = fm.Errors
	cell.PartialBatchPuts = fm.PartialBatchPuts
	cell.RecoveredRecords = c.FaultManager().Metrics().Snapshot().Recovered
	w := wal.WAL().Snapshot()
	cell.Appends, cell.Fsyncs, cell.AppendsPerFsync = w.Appends, w.Fsyncs, w.AppendsPerFsync
	cell.Compactions, cell.BytesReclaimed = w.Compactions, w.BytesReclaimed
	return cell, nil
}
