package experiments

import "testing"

// TestDurabilityCampaignCleanAcrossSeeds locks in the durability
// experiment's acceptance bar: across three seeds, each campaign fires at
// least one mid-run Close-then-Reopen storage crash (plus a node kill with
// standby promotion) and the history checker reports zero anomalies — no
// acknowledged commit may vanish across a storage-engine crash — and the
// concurrent-load throughput cell shows the group-fsync window coalescing
// (AppendsPerFsync > 1).
func TestDurabilityCampaignCleanAcrossSeeds(t *testing.T) {
	opts := Options{Scale: 0, Quick: true, Seed: 42, Payload: 256}
	cells, err := DurabilityCells(opts)
	if err != nil {
		t.Fatal(err)
	}

	var campaigns, recoveries int
	var walThroughput *DurabilityCell
	for i := range cells {
		cell := &cells[i]
		switch cell.Scenario {
		case "throughput":
			if cell.Engine == "wal" {
				walThroughput = cell
			}
		case "recovery":
			recoveries++
			if cell.ReplayedRecords < int64(cell.Entries) {
				t.Errorf("recovery of %d entries replayed only %d records",
					cell.Entries, cell.ReplayedRecords)
			}
			if cell.Segments < 2 {
				t.Errorf("recovery log for %d entries spans %d segments, want >= 2",
					cell.Entries, cell.Segments)
			}
		case "campaign":
			campaigns++
			if cell.Verdict == nil || !cell.Verdict.Clean() {
				t.Errorf("seed %d: verdict %v", cell.Seed, cell.Verdict)
				if cell.Verdict != nil {
					t.Logf("violations: %v", cell.Verdict.Violations)
				}
			}
			if cell.StorageCrashes < 1 {
				t.Errorf("seed %d: no storage crash fired", cell.Seed)
			}
			if cell.Kills < 1 || cell.Promotions != cell.Kills {
				t.Errorf("seed %d: kills=%d promotions=%d", cell.Seed, cell.Kills, cell.Promotions)
			}
			if cell.Committed < int64(cell.Requests) {
				t.Errorf("seed %d: committed %d < %d requests", cell.Seed, cell.Committed, cell.Requests)
			}
			if cell.AppendsPerFsync <= 1 {
				t.Errorf("seed %d: campaign AppendsPerFsync = %.2f, want > 1",
					cell.Seed, cell.AppendsPerFsync)
			}
			if cell.Verdict != nil && (cell.Verdict.FinalKeys == 0 || cell.Verdict.Reads == 0) {
				t.Errorf("seed %d: checker saw no history", cell.Seed)
			}
		}
	}
	if campaigns != 3 {
		t.Fatalf("got %d campaign cells, want 3", campaigns)
	}
	if recoveries != 3 {
		t.Fatalf("got %d recovery cells, want 3", recoveries)
	}
	if walThroughput == nil {
		t.Fatal("no wal throughput cell")
	}
	// Point-write coalescing depends on goroutines actually overlapping;
	// on a loaded single-CPU host a quick-mode writer can finish inside
	// one scheduler timeslice, so the hard >1 bar lives on the campaign
	// cells (whose BatchPut appends coalesce regardless of scheduling).
	// Here: every append was fsync-acknowledged and never more than once.
	if walThroughput.Fsyncs <= 0 || walThroughput.Fsyncs > walThroughput.Appends {
		t.Fatalf("throughput fsyncs = %d for %d appends", walThroughput.Fsyncs, walThroughput.Appends)
	}

	tbl, err := DurabilityTable(cells)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, len(cells))
}
