package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smokeOpts runs experiments with zero injected latency and minimal sizes:
// these tests validate harness plumbing, not paper numbers.
func smokeOpts() Options {
	return Options{Scale: 0, Quick: true, Seed: 7, Payload: 256}
}

func requireRows(t *testing.T, tbl Table, want int) {
	t.Helper()
	if len(tbl.Rows) != want {
		t.Fatalf("%s: %d rows, want %d", tbl.Title, len(tbl.Rows), want)
	}
	var buf bytes.Buffer
	tbl.Print(&buf)
	if !strings.Contains(buf.String(), tbl.Title) {
		t.Fatal("Print lost the title")
	}
}

func TestFig2Smoke(t *testing.T) {
	tbl, err := Fig2(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 12) // 3 write counts x 4 configs
}

func TestFig3Table2Smoke(t *testing.T) {
	fig3, table2, err := Fig3Table2(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, fig3, 7)   // s3{plain,aft} dynamo{txn,plain,aft} redis{plain,aft}
	requireRows(t, table2, 5) // aft, s3, dynamo, dynamo-serializable, redis
	// AFT must report zero anomalies.
	for _, row := range table2.Rows {
		if row[0] == "aft" && (row[2] != "0" || row[3] != "0") {
			t.Fatalf("AFT anomalies in Table 2: %v", row)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	tbl, err := Fig4(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 15) // 3 skews x 5 configs
}

func TestFig5Smoke(t *testing.T) {
	tbl, err := Fig5(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 12) // 2 stores x 6 ratios
}

func TestFig6Smoke(t *testing.T) {
	tbl, err := Fig6(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 12) // 2 stores x 6 lengths
}

func TestFig7Smoke(t *testing.T) {
	tbl, err := Fig7(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 8) // 2 stores x 4 quick client counts
}

func TestFig8Smoke(t *testing.T) {
	tbl, err := Fig8(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, tbl, 6) // 2 stores x 3 quick node counts
}

func TestFig9Smoke(t *testing.T) {
	tbl, err := Fig9(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFig10Smoke(t *testing.T) {
	tbl, err := Fig10(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The kill event must appear.
	var sawKill bool
	for _, row := range tbl.Rows {
		if strings.Contains(row[3], "killed") {
			sawKill = true
		}
	}
	if !sawKill {
		t.Fatal("kill event missing from timeline")
	}
}
