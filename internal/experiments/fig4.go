package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/stats"
	"aft/internal/workload"
)

// Fig4 reproduces Figure 4 (§6.2): end-to-end latency of the canonical
// 2-function transaction under three Zipfian skews (1.0, 1.5, 2.0) for
// five configurations — DynamoDB transaction mode, AFT over DynamoDB with
// and without the read data cache, and AFT over Redis with and without the
// cache. The paper uses a 100,000-key space; the simulated run uses a
// configurable space (default 20,000) to bound memory.
//
// Expected shapes: caching helps AFT-D more as skew rises (hot versions
// stay cached); AFT-R barely changes (Redis IO is already negligible
// against function invocation); DynamoDB transactions degrade sharply at
// z=2.0 from conflict-abort retries.
func Fig4(opts Options) (Table, error) {
	opts = opts.withDefaults()
	opts.spin = true // few clients: precise sub-ms latency injection
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const clients = 10
	perClient := opts.scaled(300)
	keys := 20000
	if opts.Quick {
		keys = 2000
	}

	table := Table{
		Title:  "Figure 4: read caching x data skew, 2-function transactions (ms, paper-equivalent)",
		Header: []string{"zipf", "config", "median", "p99"},
		Notes:  []string{fmt.Sprintf("key space %d (paper: 100,000); skews 1.0/1.5/2.0", keys)},
	}

	type cfg struct {
		name  string
		store storeKind
		arch  string
		cache bool
	}
	configs := []cfg{
		{"DynamoDB Txns", kindDynamo, "txn", false},
		{"AFT-D No Caching", kindDynamo, "aft", false},
		{"AFT-D Caching", kindDynamo, "aft", true},
		{"AFT-R No Caching", kindRedis, "aft", false},
		{"AFT-R Caching", kindRedis, "aft", true},
	}

	for _, zipf := range []float64{1.0, 1.5, 2.0} {
		for _, c := range configs {
			rec, err := runFig4Config(ctx, opts, c.store, c.arch, c.cache, payload, clients, perClient, keys, zipf)
			if err != nil {
				return table, fmt.Errorf("fig4 %s z=%.1f: %w", c.name, zipf, err)
			}
			s := rec.Summarize()
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%.1f", zipf), c.name, ms(s.Median), ms(s.P99),
			})
		}
	}
	return table, nil
}

func runFig4Config(ctx context.Context, opts Options, kind storeKind, arch string, cache bool,
	payload []byte, clients, perClient, keys int, zipf float64) (*stats.Recorder, error) {

	store := opts.newStore(kind)
	reg := workload.NewRegistry()
	var exec baselines.Executor
	switch arch {
	case "txn":
		if err := seedPlain(ctx, store, reg, keys, payload); err != nil {
			return nil, err
		}
		var err error
		exec, err = baselines.NewDynamoTxn(baselines.DynamoTxnConfig{
			Store: store, Payload: payload, Registry: reg,
			Overhead: opts.lambdaModel(), Sleeper: opts.sleeper(),
		})
		if err != nil {
			return nil, err
		}
	default:
		node, err := newNode("fig4", store, cache)
		if err != nil {
			return nil, err
		}
		if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
			return nil, err
		}
		platform, err := opts.newPlatform(node)
		if err != nil {
			return nil, err
		}
		exec = baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
	}

	gens := make([]*workload.Generator, clients)
	for c := range gens {
		gens[c] = workload.NewGenerator(opts.Seed+int64(c), workload.NewZipf(opts.Seed+int64(100+c), keys, zipf), 2, 1, 2)
	}
	rec := stats.NewRecorder()
	_, err := runClients(clients, perClient, func(client, iter int) error {
		start := time.Now()
		if _, err := exec.Execute(ctx, gens[client].Next()); err != nil {
			return err
		}
		rec.Record(opts.rescale(time.Since(start)))
		return nil
	})
	return rec, err
}
