package experiments

import (
	"context"
	"fmt"
	"time"

	"aft/internal/baselines"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/workload"
)

// Fig9 reproduces Figure 9 (§6.6): throughput of a single node under 40
// clients (Zipf 1.5) with global data garbage collection enabled versus
// disabled, plus the GC's deletion rate over time.
//
// Expected shape: the GC'd and non-GC'd throughput curves overlap — the
// supersedence bookkeeping happens off the critical path — while the GC
// deletes transactions at roughly the commit rate of the contended
// workload.
func Fig9(opts Options) (Table, error) {
	opts = opts.withDefaults()
	ctx := context.Background()
	payload := workload.Payload(opts.Seed, opts.Payload)
	const keys = 1000
	const zipf = 1.5
	const clients = 40
	buckets := 8
	bucket := 500 * time.Millisecond
	if opts.Quick {
		buckets = 4
		bucket = 200 * time.Millisecond
	}

	table := Table{
		Title:  "Figure 9: throughput with and without global GC (txn/s, paper-equivalent)",
		Header: []string{"t(bucket)", "GC throughput", "No-GC throughput", "txns deleted/s"},
	}

	run := func(gc bool) ([]float64, []float64, error) {
		store := opts.newStore(kindDynamo)
		cfg := cluster.Config{
			Nodes:           1,
			Store:           store,
			Node:            core.Config{EnableDataCache: true, MaxConcurrent: nodeConcurrency},
			MulticastPeriod: opts.multicastPeriod(),
			PruneMulticast:  true,
		}
		if gc {
			// GC cadence tied to the sampling bucket so several local
			// sweeps and global collections land inside every bucket.
			cfg.LocalGCInterval = bucket / 8
			cfg.GlobalGCInterval = bucket / 4
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := c.Start(ctx); err != nil {
			return nil, nil, err
		}
		defer c.Stop()
		node := c.Nodes()[0]
		reg := workload.NewRegistry()
		if err := seedAFT(ctx, node, reg, keys, payload); err != nil {
			return nil, nil, err
		}
		platform, err := opts.newPlatform(c.Client())
		if err != nil {
			return nil, nil, err
		}
		exec := baselines.NewAFT(baselines.AFTConfig{Platform: platform, Payload: payload, Registry: reg})
		gens := make([]*workload.Generator, clients)
		for i := range gens {
			gens[i] = workload.NewGenerator(opts.Seed+int64(i),
				workload.NewZipf(opts.Seed+int64(500+i), keys, zipf), 2, 1, 2)
		}

		// Sample committed and deleted counts per bucket while clients run.
		tput := make([]float64, buckets)
		deleted := make([]float64, buckets)
		done := make(chan error, 1)
		go func() {
			_, _, err := runForDuration(clients, time.Duration(buckets)*bucket, func(client int) error {
				_, err := exec.Execute(ctx, gens[client].Next())
				return err
			})
			done <- err
		}()
		prevCommitted := int64(0)
		prevDeleted := int64(0)
		for b := 0; b < buckets; b++ {
			time.Sleep(bucket)
			committed := c.TotalCommitted()
			del := c.FaultManager().Metrics().Snapshot().TxnsDeleted
			tput[b] = opts.rescaleRate(float64(committed-prevCommitted) / bucket.Seconds())
			deleted[b] = opts.rescaleRate(float64(del-prevDeleted) / bucket.Seconds())
			prevCommitted, prevDeleted = committed, del
		}
		if err := <-done; err != nil {
			return nil, nil, err
		}
		return tput, deleted, nil
	}

	gcTput, gcDeleted, err := run(true)
	if err != nil {
		return table, fmt.Errorf("fig9 gc run: %w", err)
	}
	noGcTput, _, err := run(false)
	if err != nil {
		return table, fmt.Errorf("fig9 no-gc run: %w", err)
	}
	for b := 0; b < buckets; b++ {
		t := opts.rescale(time.Duration(b) * bucket)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0fs", t.Seconds()),
			fmt.Sprintf("%.0f", gcTput[b]),
			fmt.Sprintf("%.0f", noGcTput[b]),
			fmt.Sprintf("%.0f", gcDeleted[b]),
		})
	}
	return table, nil
}
