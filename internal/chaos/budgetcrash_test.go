package chaos

import (
	"context"
	"testing"

	"aft/internal/checker"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/lb"
	"aft/internal/storage/walengine"
	"aft/internal/workload"
)

// TestCrashDuringSpillLosesNoAckedCommit lands a storage crash exactly at
// the first operation of a metadata-budget spill — the probe BatchGet that
// confirms records are re-fetchable before they are dropped from memory —
// and proves the spill's safety argument: an interrupted spill never loses
// an acknowledged commit, because eviction only ever follows a successful
// probe and the spill itself writes nothing. The history checker, not
// hand-rolled assertions, delivers the verdict.
func TestCrashDuringSpillLosesNoAckedCommit(t *testing.T) {
	ctx := context.Background()
	ws, err := walengine.Open(t.TempDir(), walengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	st := Wrap(ws, Config{Seed: 11})

	const budget = 8 << 10
	node, err := core.NewNode(core.Config{
		NodeID: "n1",
		Store:  st,
		// Fixed-width virtual timestamps keep commit-key order stable.
		Clock:               idgen.NewVirtualClock(1_000_000_000, 1),
		MetadataBudgetBytes: budget,
		// No data cache: the overage must be commit-record metadata, so
		// enforcement is forced past its cheap relief stages into a spill.
		EnableDataCache: false,
	})
	if err != nil {
		t.Fatal(err)
	}

	check := checker.New()
	runner := &Runner{Client: lb.New(node), Payload: workload.Payload(3, 64), Check: check}

	// Seed acked commits until resident metadata sits over the budget but
	// safely under the 25% shed ceiling (so seeding itself never sheds).
	seeded := 0
	for node.MetadataBytes() <= budget+budget/8 {
		if seeded >= 500 {
			t.Fatalf("seeding stalled: %d bytes resident after %d commits", node.MetadataBytes(), seeded)
		}
		req := workload.Request{Funcs: [][]workload.Op{{
			{Kind: workload.OpWrite, Key: workload.KeyName(seeded)},
		}}}
		if err := runner.Do(ctx, req); err != nil {
			t.Fatalf("seeding commit %d: %v", seeded, err)
		}
		seeded++
	}

	// Crash+reopen the engine at the spill's first storage operation: the
	// probe runs against the recovered engine, so it either fails (nothing
	// is evicted this round) or confirms against durable state — both safe.
	plan := ScheduleStorageCrashes(st, ws, 1, 1)
	spilled, err := node.EnforceBudget(ctx)
	if err != nil {
		// The probe observed the crash window; nothing was dropped
		// unconfirmed, and the next maintenance pass must finish the job.
		t.Logf("first enforcement interrupted as designed: %v (spilled %d)", err, spilled)
		more, err := node.EnforceBudget(ctx)
		if err != nil {
			t.Fatalf("post-crash enforcement: %v", err)
		}
		spilled += more
	}
	if plan.Crashes() != 1 {
		t.Fatalf("crash plan fired %d times, want 1 (mid-spill)", plan.Crashes())
	}
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}
	if spilled == 0 {
		t.Fatal("no records spilled; the crash point never landed inside a spill")
	}
	if got := node.MetadataBytes(); got > budget {
		t.Fatalf("MetadataBytes = %d after enforcement, want <= %d", got, budget)
	}

	// Audit: ground truth from storage, every acked key read back through
	// the node (spilled records must recover on demand), checker verdict.
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, seeded)
	for i := range keys {
		keys[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != seeded {
		t.Fatalf("final state has %d keys, want %d", len(final), seeded)
	}
	if v := check.Verdict(final); !v.Clean() {
		t.Fatalf("verdict: %s\nviolations:\n%v", v, v.Violations)
	}
	if m := node.Metrics().Snapshot(); m.SpilledRecords == 0 {
		t.Fatal("SpilledRecords metric not counted")
	}
}
