package chaos

// storagecrash.go schedules Close-then-Reopen crashes of the storage
// engine itself — the failure mode the in-memory simulators cannot
// express. A crash fires at an exact storage-operation index (via the
// wrapper's CrashAfter hook), so it can land anywhere in AFT's protocol:
// between a commit's data write and its record write, mid-recovery-scan,
// mid-GC round. The engine's log replay then has to restore every
// acknowledged write, and the history checker's lost-write audit proves it
// did.

import (
	"fmt"
	"sync"
)

// StorageCrasher is a storage engine whose process crash and restart can
// be simulated in place: Crash discards unacknowledged state and takes the
// engine down (operations fail with storage.ErrUnavailable), Reopen
// recovers the durable state. The WAL engine
// (internal/storage/walengine) implements it.
type StorageCrasher interface {
	Crash() error
	Reopen() error
}

// StorageCrashPlan drives n Close-then-Reopen storage crashes, one every
// gap storage operations, by re-arming a CrashAfter hook on the chaos
// wrapper after each firing. Crashes fire synchronously at the start of a
// storage operation, so with a sequential driver the schedule is
// deterministic.
type StorageCrashPlan struct {
	st     *Store
	target StorageCrasher
	gap    int64

	mu        sync.Mutex
	remaining int
	crashes   int
	err       error
}

// ScheduleStorageCrashes arms a plan for n crashes on st, the first after
// gap more storage operations and each subsequent one gap operations after
// the previous firing. The engine is reopened synchronously inside the
// hook: the operation that tripped the crash proceeds against the
// recovered engine (and a transaction mid-protocol observes the crash only
// through the writes it lost).
func ScheduleStorageCrashes(st *Store, target StorageCrasher, n int, gap int64) *StorageCrashPlan {
	p := &StorageCrashPlan{st: st, target: target, gap: gap, remaining: n}
	if n > 0 {
		st.CrashAfter(gap, p.fire)
	}
	return p
}

// fire crashes and reopens the engine, then re-arms the next crash.
func (p *StorageCrashPlan) fire() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remaining <= 0 {
		return
	}
	p.remaining--
	if err := p.target.Crash(); err != nil && p.err == nil {
		p.err = fmt.Errorf("chaos: storage crash %d: %w", p.crashes+1, err)
	}
	if err := p.target.Reopen(); err != nil && p.err == nil {
		// A failed reopen is fatal to the campaign: the engine stays
		// down and every subsequent operation fails. Surface it.
		p.err = fmt.Errorf("chaos: storage reopen %d: %w", p.crashes+1, err)
	}
	p.crashes++
	if p.remaining > 0 {
		p.st.CrashAfter(p.gap, p.fire)
	}
}

// Crashes returns how many crash+reopen cycles have fired.
func (p *StorageCrashPlan) Crashes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashes
}

// Pending returns how many scheduled crashes have not fired yet.
func (p *StorageCrashPlan) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.remaining
}

// Err returns the first Crash/Reopen failure, if any.
func (p *StorageCrashPlan) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
