package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"aft/internal/checker"
	"aft/internal/core"
	"aft/internal/idgen"
	"aft/internal/retry"
	"aft/internal/storage"
	"aft/internal/workload"
)

// Client is the transactional surface the runner drives: a *core.Node, a
// cluster's load balancer, or a wire client.
type Client interface {
	StartTransaction(ctx context.Context) (string, error)
	Get(ctx context.Context, txid, key string) ([]byte, error)
	Put(ctx context.Context, txid, key string, value []byte) error
	CommitTransaction(ctx context.Context, txid string) (idgen.ID, error)
	AbortTransaction(ctx context.Context, txid string) error
}

// Retriable classifies errors after which a request should be redone with
// a fresh transaction — the shared §3.3.1 discipline (internal/retry),
// which injected chaos failures satisfy via storage.ErrUnavailable.
func Retriable(err error) bool { return retry.Retriable(err) }

// RunnerMetrics counts runner activity.
type RunnerMetrics struct {
	Requests      atomic.Int64 // logical requests completed
	Commits       atomic.Int64 // committed requests (== Requests on success)
	Redos         atomic.Int64 // whole-request redos (fresh transaction)
	CommitRetries atomic.Int64 // same-transaction idempotent commit retries
}

// RunnerMetricsSnapshot is a point-in-time copy of RunnerMetrics.
type RunnerMetricsSnapshot struct {
	Requests, Commits, Redos, CommitRetries int64
}

// Snapshot returns a copy of the counters.
func (m *RunnerMetrics) Snapshot() RunnerMetricsSnapshot {
	return RunnerMetricsSnapshot{
		Requests: m.Requests.Load(), Commits: m.Commits.Load(),
		Redos: m.Redos.Load(), CommitRetries: m.CommitRetries.Load(),
	}
}

// Runner executes workload requests against a Client with the paper's
// §3.3.1 fault-tolerance discipline — redo-until-commit — while recording
// the observable history into a checker.Recorder:
//
//   - every attempt's reads become a trace (failed attempts' reads are
//     observations too and must satisfy the same guarantees);
//   - writes embed §6.1.2 anomaly metadata (the attempt's transaction ID
//     and the request's cowritten set);
//   - a commit that fails with a transient error is first retried under
//     the SAME transaction ID (commits are idempotent, §3.1); only a lost
//     transaction forces a fresh redo;
//   - an attempt whose commit outcome stays unknown is recorded as
//     indeterminate, to be settled by the checker's storage ground truth.
//
// Safe for concurrent use by many workload goroutines.
type Runner struct {
	// Client is the transactional backend. Required.
	Client Client
	// Payload is the value body (wrapped with anomaly metadata).
	Payload []byte
	// Check records the history; nil disables recording.
	Check *checker.Recorder
	// MaxRedos bounds whole-request redos; 0 defaults to 64.
	MaxRedos int
	// MaxCommitRetries bounds same-transaction commit retries on transient
	// errors; 0 defaults to 8.
	MaxCommitRetries int
	// OnRedo, when set, runs before each redo with the error that failed
	// the previous attempt. Deterministic harnesses use it as the stand-in
	// for server-side maintenance that runs concurrently with client
	// backoff in a real deployment — e.g. budget enforcement relieving the
	// ErrOverloaded a shedding node answered with.
	OnRedo func(ctx context.Context, err error)

	metrics RunnerMetrics
}

// Metrics returns the runner's counters.
func (r *Runner) Metrics() *RunnerMetrics { return &r.metrics }

// Do executes one logical request, redoing it with a fresh transaction
// after retriable failures until it commits (or the redo budget is spent).
func (r *Runner) Do(ctx context.Context, req workload.Request) error {
	maxRedos := r.MaxRedos
	if maxRedos <= 0 {
		maxRedos = 64
	}
	var lastErr error
	for redo := 0; redo <= maxRedos; redo++ {
		if redo > 0 {
			r.metrics.Redos.Add(1)
			if r.OnRedo != nil {
				r.OnRedo(ctx, lastErr)
			}
		}
		err := r.attempt(ctx, req)
		if err == nil {
			r.metrics.Requests.Add(1)
			return nil
		}
		lastErr = err
		if !Retriable(err) {
			return err
		}
	}
	return fmt.Errorf("chaos: request failed after %d redos: %w", maxRedos, lastErr)
}

// attempt runs one request attempt under a fresh transaction.
func (r *Runner) attempt(ctx context.Context, req workload.Request) error {
	txid, err := r.Client.StartTransaction(ctx)
	if err != nil {
		return err
	}
	writeSet := req.WriteSet()
	tr := workload.Trace{UUID: txid}
	written := make(map[string]bool)
	fail := func(opErr error) error {
		// The attempt never reached a commit call, so it definitively did
		// not commit; its reads still join the history.
		_ = r.Client.AbortTransaction(ctx, txid)
		if r.Check != nil {
			r.Check.RecordTrace(tr)
			r.Check.RecordAbort(txid)
		}
		return opErr
	}
	for _, fn := range req.Funcs {
		for _, op := range fn {
			switch op.Kind {
			case workload.OpWrite:
				value, err := workload.Wrap(workload.Meta{UUID: txid, Cowritten: writeSet}, r.Payload)
				if err != nil {
					return fail(err)
				}
				if err := r.Client.Put(ctx, txid, op.Key, value); err != nil {
					return fail(err)
				}
				written[op.Key] = true
			case workload.OpRead:
				raw, err := r.Client.Get(ctx, txid, op.Key)
				if errors.Is(err, core.ErrKeyNotFound) {
					continue // NULL version: the key does not exist yet
				}
				if err != nil {
					return fail(err)
				}
				m, _, err := workload.Unwrap(raw)
				if err != nil {
					return fail(fmt.Errorf("chaos: corrupt value at %q: %w", op.Key, err))
				}
				tr.Reads = append(tr.Reads, workload.ReadObs{
					Key: op.Key, Meta: m, AfterOwnWrite: written[op.Key],
				})
			}
		}
	}

	id, err := r.commit(ctx, txid)
	if r.Check != nil {
		r.Check.RecordTrace(tr)
	}
	if err != nil {
		// The commit call failed after retries. Abort the still-live
		// transaction so a redo does not leak its concurrency slot and
		// reader pins — and let the abort's answer settle the outcome: a
		// clean abort proves the commit never happened; ErrTxnFinished
		// proves it DID (the node answered but the response was lost), in
		// which case the idempotent commit retry recovers the ID and the
		// request actually succeeded. Anything else stays unknown for the
		// checker's storage ground truth.
		switch aerr := r.Client.AbortTransaction(ctx, txid); {
		case aerr == nil:
			if r.Check != nil {
				r.Check.RecordAbort(txid)
			}
		case errors.Is(aerr, core.ErrTxnFinished):
			if id, cerr := r.Client.CommitTransaction(ctx, txid); cerr == nil {
				if r.Check != nil {
					r.Check.RecordCommit(txid, id, writeSet)
				}
				r.metrics.Commits.Add(1)
				return nil
			}
			fallthrough
		default:
			if r.Check != nil {
				r.Check.RecordIndeterminate(txid)
			}
		}
		return err
	}
	if r.Check != nil {
		r.Check.RecordCommit(txid, id, writeSet)
	}
	r.metrics.Commits.Add(1)
	return nil
}

// commit runs CommitTransaction with idempotent same-transaction retries
// on transient failures (§3.1): a commit whose first attempt failed before
// the record was durable simply re-runs; one that actually succeeded
// returns the original commit ID.
func (r *Runner) commit(ctx context.Context, txid string) (idgen.ID, error) {
	maxRetries := r.MaxCommitRetries
	if maxRetries <= 0 {
		maxRetries = 8
	}
	id, err := r.Client.CommitTransaction(ctx, txid)
	for retries := 0; err != nil && retries < maxRetries && errors.Is(err, storage.ErrUnavailable); retries++ {
		r.metrics.CommitRetries.Add(1)
		id, err = r.Client.CommitTransaction(ctx, txid)
	}
	return id, err
}

// FinalState reads every key through one fresh transaction per batch and
// returns the observed metadata (absent keys omitted) — the input to the
// checker's lost-write pass. Call it after the system quiesces, with fault
// injection disabled; retriable failures redo the whole pass.
func (r *Runner) FinalState(ctx context.Context, keys []string) (map[string]workload.Meta, error) {
	var lastErr error
	for redo := 0; redo < 8; redo++ {
		final, err := r.finalStateOnce(ctx, keys)
		if err == nil {
			return final, nil
		}
		lastErr = err
		if !Retriable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("chaos: final-state read failed: %w", lastErr)
}

func (r *Runner) finalStateOnce(ctx context.Context, keys []string) (map[string]workload.Meta, error) {
	txid, err := r.Client.StartTransaction(ctx)
	if err != nil {
		return nil, err
	}
	defer func() { _ = r.Client.AbortTransaction(ctx, txid) }()
	final := make(map[string]workload.Meta, len(keys))
	for _, k := range keys {
		raw, err := r.Client.Get(ctx, txid, k)
		if errors.Is(err, core.ErrKeyNotFound) {
			continue
		}
		if err != nil {
			return nil, err
		}
		m, _, err := workload.Unwrap(raw)
		if err != nil {
			return nil, fmt.Errorf("chaos: corrupt value at %q: %w", k, err)
		}
		final[k] = m
	}
	return final, nil
}
