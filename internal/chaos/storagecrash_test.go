package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"aft/internal/storage"
	"aft/internal/storage/storagetest"
	"aft/internal/storage/walengine"
)

// TestStorageCrashPlanFiresAndRecovers drives a WAL engine through a
// scheduled crash plan: every crash+reopen must fire at its operation
// index, and every previously acknowledged write must read back after
// each recovery.
func TestStorageCrashPlanFiresAndRecovers(t *testing.T) {
	ctx := context.Background()
	eng, err := walengine.Open(t.TempDir(), walengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := Wrap(eng, Config{Seed: 1})
	plan := ScheduleStorageCrashes(st, eng, 3, 10)

	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k-%02d", i)
		if err := st.Put(ctx, k, []byte(k)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		// Every acknowledged write so far must still be there, across
		// however many crash+reopen cycles have fired.
		for j := 0; j <= i; j++ {
			kk := fmt.Sprintf("k-%02d", j)
			v, err := st.Get(ctx, kk)
			if err != nil || string(v) != kk {
				t.Fatalf("after op %d (crashes=%d): Get(%s) = %q, %v",
					i, plan.Crashes(), kk, v, err)
			}
		}
	}
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}
	if plan.Crashes() != 3 || plan.Pending() != 0 {
		t.Fatalf("crashes = %d pending = %d, want 3 and 0", plan.Crashes(), plan.Pending())
	}
	if got := st.FaultMetrics().Snapshot().Crashes; got != 3 {
		t.Fatalf("wrapper crash-hook count = %d, want 3", got)
	}
}

// TestStorageCrashPlanSurfacesReopenFailure pins the failure surface: if
// the engine cannot reopen, the plan must report it rather than letting
// the campaign limp on against a dead store.
func TestStorageCrashPlanSurfacesReopenFailure(t *testing.T) {
	ctx := context.Background()
	eng, err := walengine.Open(t.TempDir(), walengine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := Wrap(eng, Config{Seed: 1})
	plan := ScheduleStorageCrashes(st, brokenReopen{eng}, 1, 2)
	for i := 0; i < 4; i++ {
		err = st.Put(ctx, fmt.Sprintf("k%d", i), nil)
	}
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("Put against unreopened engine = %v, want ErrUnavailable", err)
	}
	if plan.Err() == nil {
		t.Fatal("plan swallowed the reopen failure")
	}
}

// brokenReopen crashes for real but refuses to come back.
type brokenReopen struct{ eng *walengine.Store }

func (b brokenReopen) Crash() error  { return b.eng.Crash() }
func (b brokenReopen) Reopen() error { return errors.New("disk gone") }

// TestConformanceChaosOverWAL runs the shared storage contract over the
// chaos wrapper around the disk engine (faults off): the pass-through must
// be transparent for the durable backend exactly as for the sims.
func TestConformanceChaosOverWAL(t *testing.T) {
	storagetest.Run(t, func() storage.Store {
		eng, err := walengine.Open(t.TempDir(), walengine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return Wrap(eng, Config{Seed: 7})
	})
}
