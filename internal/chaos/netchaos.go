package chaos

// netchaos.go is the network edge of the fault harness: a net.Listener
// wrapper layered under wire.Server that injects the failure modes a
// real network brings — one-way and two-way blackhole partitions,
// mid-frame connection resets, per-frame delay spikes, and slow-drip
// reads (a "limping" peer that trickles bytes).
//
// Determinism contract (mirroring the storage wrapper): probabilistic
// decisions are hash-derived from (seed, conn index, frame index), never
// drawn from a shared rng stream, so they are independent of goroutine
// interleaving; conn indices and write-frame indices are deterministic
// whenever a single sequential driver produces the traffic. Partitions
// auto-heal after a fixed number of accepts — each failed client attempt
// redials, so "N accepts" is a deterministic count of shed attempts
// under a sequential driver. Scheduled resets fire on the global
// write-frame clock, like CrashAfter fires on the storage-op clock.

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aft/internal/latency"
	"aft/internal/strhash"
	"aft/internal/telemetry"
)

// PartitionMode classifies a blackhole partition's direction.
type PartitionMode int

// Partition modes.
const (
	// PartitionNone: no partition.
	PartitionNone PartitionMode = iota
	// PartitionBoth drops both directions: the server neither reads
	// requests nor delivers responses. The cleanest failure — nothing
	// reaches the node, clients time out and redo.
	PartitionBoth
	// PartitionInbound drops client->server traffic: server reads block
	// until heal. Responses cannot be produced without requests, so the
	// client experience matches PartitionBoth, but blocked handler
	// goroutines pile up server-side and must drain cleanly on heal.
	PartitionInbound
	// PartitionOutbound swallows server->client traffic while requests
	// still flow — the gray failure: the node does the work (commits
	// happen!) but every ack is lost. Clients time out, redo, and must
	// settle indeterminate commits through the §3.3.1 abort-or-redo
	// path; abandoned server-side transactions are reclaimed by
	// Node.ReapExpired.
	PartitionOutbound
)

// NetConfig parameterizes the network fault injector. Rates are
// probabilities in [0, 1].
type NetConfig struct {
	// Seed drives every hash-derived decision.
	Seed int64
	// DelayRate is the per-read-frame delay-spike probability.
	DelayRate float64
	// Delay is the injected spike duration (modeled time, scaled by
	// Sleeper); 0 defaults to 5ms.
	Delay time.Duration
	// SlowDripRate is the per-conn probability that ALL of the conn's
	// reads are dripped in dripChunk-byte slices (a limping peer).
	SlowDripRate float64
	// DripDelay is the modeled per-dripped-read delay; 0 defaults to 1ms.
	DripDelay time.Duration
	// Sleeper realizes modeled delays; nil never sleeps (decisions still
	// count, keeping metrics deterministic at time scale 0).
	Sleeper *latency.Sleeper
	// Events, when non-nil, journals partition heals into the flight
	// recorder, labeled EventNode.
	Events *telemetry.Journal
	// EventNode labels this injector's journal events.
	EventNode string
}

// NetMetrics counts injected network faults. All fields are atomic.
type NetMetrics struct {
	Conns           atomic.Int64 // connections accepted through the wrapper
	Partitions      atomic.Int64 // partitions installed
	Heals           atomic.Int64 // partitions healed (auto or manual)
	BlackholedConns atomic.Int64 // accepts that landed inside a partition window
	BlockedReads    atomic.Int64 // reads that blocked against a partition
	SwallowedWrites atomic.Int64 // server writes swallowed by an outbound blackhole
	Resets          atomic.Int64 // scheduled mid-frame conn resets fired
	Delays          atomic.Int64 // delay spikes injected
	DrippedConns    atomic.Int64 // conns selected for slow-drip reads
}

// NetMetricsSnapshot is a point-in-time copy of NetMetrics.
type NetMetricsSnapshot struct {
	Conns, Partitions, Heals, BlackholedConns, BlockedReads,
	SwallowedWrites, Resets, Delays, DrippedConns int64
}

// Snapshot returns a copy of the counters.
func (m *NetMetrics) Snapshot() NetMetricsSnapshot {
	return NetMetricsSnapshot{
		Conns: m.Conns.Load(), Partitions: m.Partitions.Load(), Heals: m.Heals.Load(),
		BlackholedConns: m.BlackholedConns.Load(), BlockedReads: m.BlockedReads.Load(),
		SwallowedWrites: m.SwallowedWrites.Load(), Resets: m.Resets.Load(),
		Delays: m.Delays.Load(), DrippedConns: m.DrippedConns.Load(),
	}
}

// NetChaos is a fault-injecting net.Listener. Wrap a real listener and
// hand the wrapper to wire.Server.Serve; every accepted conn routes its
// reads and writes through the injector.
type NetChaos struct {
	ln  net.Listener
	cfg NetConfig

	mu sync.Mutex
	// mode/healed/remainingAccepts are the partition state: healed is
	// non-nil while partitioned and closed on heal, so blocked reads wake
	// without polling.
	mode             PartitionMode
	healed           chan struct{}
	remainingAccepts int
	// conns tracks live accepted conns so installing an inbound-affecting
	// partition can poison their read deadlines: a handler parked inside a
	// real Conn.Read would otherwise be woken directly by the next
	// request's bytes, bypassing the blackhole.
	conns map[*netConn]struct{}

	// writeFrames is the global write-frame clock scheduled resets fire
	// against (the network mirror of Store.Ops).
	writeFrames atomic.Int64
	resetMu     sync.Mutex
	resets      []int64

	metrics NetMetrics
}

// WrapListener wraps ln behind the network fault injector. With a zero
// config (beyond Seed) and no partition installed it is a transparent
// pass-through.
func WrapListener(ln net.Listener, cfg NetConfig) *NetChaos {
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	if cfg.DripDelay == 0 {
		cfg.DripDelay = time.Millisecond
	}
	return &NetChaos{ln: ln, cfg: cfg, conns: make(map[*netConn]struct{})}
}

// NetFaultMetrics returns the injection counters.
func (n *NetChaos) NetFaultMetrics() *NetMetrics { return &n.metrics }

// WriteFrames returns the global write-frame clock (what ResetAfterWrites
// schedules against).
func (n *NetChaos) WriteFrames() int64 { return n.writeFrames.Load() }

// SetPartition installs a blackhole partition that auto-heals after
// healAfterAccepts connections have been accepted: under the wire
// client's redial-per-attempt behavior that is a deterministic count of
// shed attempts, so sequential campaigns reproduce bit for bit. The
// heal-triggering accept itself is served clean. healAfterAccepts <= 0
// means the partition persists until SetPartition(PartitionNone, 0).
// Conns accepted BEFORE the partition (the client's idle pool) are
// affected too — partitions cut links, not handshakes.
func (n *NetChaos) SetPartition(mode PartitionMode, healAfterAccepts int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if mode == PartitionNone {
		n.healLocked()
		return
	}
	if n.mode == PartitionNone {
		n.metrics.Partitions.Add(1)
	}
	n.mode = mode
	n.remainingAccepts = healAfterAccepts
	if n.healed == nil {
		n.healed = make(chan struct{})
	}
	if mode == PartitionBoth || mode == PartitionInbound {
		// Kick handlers parked inside a real Conn.Read back out so they
		// re-check the partition: poison every live conn's read deadline.
		// netConn.Read recognizes the injected timeout and parks properly.
		for c := range n.conns {
			c.Conn.SetReadDeadline(time.Unix(1, 0))
		}
	}
}

// healLocked ends any active partition, waking blocked reads. Caller
// holds n.mu.
func (n *NetChaos) healLocked() {
	if n.mode == PartitionNone {
		return
	}
	n.mode = PartitionNone
	n.remainingAccepts = 0
	if n.healed != nil {
		close(n.healed)
		n.healed = nil
	}
	n.metrics.Heals.Add(1)
	n.cfg.Events.Record(telemetry.EventPartitionHeal, n.cfg.EventNode, "",
		"heals", strconv.FormatInt(n.metrics.Heals.Load(), 10))
}

// partition snapshots the current partition state.
func (n *NetChaos) partition() (PartitionMode, chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mode, n.healed
}

// ResetAfterWrites schedules one mid-frame connection reset at the first
// conn write after delta more write frames: half the frame is written,
// then the conn is cut — the client sees a response truncated mid-gob.
func (n *NetChaos) ResetAfterWrites(delta int64) {
	n.resetMu.Lock()
	n.resets = append(n.resets, n.writeFrames.Load()+delta)
	n.resetMu.Unlock()
}

// PendingResets returns how many scheduled resets have not fired yet.
func (n *NetChaos) PendingResets() int {
	n.resetMu.Lock()
	defer n.resetMu.Unlock()
	return len(n.resets)
}

// dueReset consumes at most one scheduled reset due at frame.
func (n *NetChaos) dueReset(frame int64) bool {
	n.resetMu.Lock()
	defer n.resetMu.Unlock()
	for i, at := range n.resets {
		if frame >= at {
			n.resets = append(n.resets[:i], n.resets[i+1:]...)
			return true
		}
	}
	return false
}

// roll derives a deterministic pseudo-probability from the seed and a
// decision coordinate — a pure function, immune to goroutine
// interleaving and map order.
func (n *NetChaos) roll(stream string, idx, frame int64) float64 {
	h := strhash.FNV32a(fmt.Sprintf("%d/%s/%d/%d", n.cfg.Seed, stream, idx, frame))
	return float64(h) / float64(1<<32)
}

// Accept implements net.Listener, counting accepts against any active
// partition's auto-heal budget.
func (n *NetChaos) Accept() (net.Conn, error) {
	c, err := n.ln.Accept()
	if err != nil {
		return nil, err
	}
	idx := n.metrics.Conns.Add(1) - 1
	cc := &netConn{Conn: c, h: n, idx: idx, closed: make(chan struct{})}
	n.mu.Lock()
	if n.mode != PartitionNone {
		if n.remainingAccepts > 0 {
			n.remainingAccepts--
			if n.remainingAccepts == 0 {
				n.healLocked() // this accept is the recovery: serve it clean
			}
		}
		if n.mode != PartitionNone {
			n.metrics.BlackholedConns.Add(1)
		}
	}
	n.conns[cc] = struct{}{}
	n.mu.Unlock()
	if n.cfg.SlowDripRate > 0 && n.roll("drip", idx, 0) < n.cfg.SlowDripRate {
		cc.drip = true
		n.metrics.DrippedConns.Add(1)
	}
	return cc, nil
}

// Close implements net.Listener. It does not heal an active partition:
// the server closes every accepted conn right after, which unblocks
// parked reads through their conn-level closed channels.
func (n *NetChaos) Close() error { return n.ln.Close() }

// Addr implements net.Listener.
func (n *NetChaos) Addr() net.Addr { return n.ln.Addr() }

// dripChunk is the read-slice size a dripped conn is limited to. Small
// enough that a payload-sized frame takes many delayed reads (the limp
// is observable), large enough that the per-read delay budget — each
// sub-millisecond sleep really costs about a scheduler quantum — keeps
// a frame's total drip time well inside an op deadline: a limping peer
// is slow, not partitioned.
const dripChunk = 256

// netConn is one accepted conn routed through the injector. The read
// path (frames counter included) is only touched by the server's one
// handler goroutine per conn, so it needs no synchronization.
type netConn struct {
	net.Conn
	h    *NetChaos
	idx  int64
	drip bool

	readFrames int64

	closeOnce sync.Once
	closed    chan struct{}
}

// Read blocks while an inbound-affecting partition is active (waking on
// heal or close), then applies delay spikes and slow-drip before
// delegating. A read parked in the underlying conn when a partition is
// installed is kicked out by the poisoned deadline and re-enters here.
func (c *netConn) Read(b []byte) (int, error) {
	blocked := false
	for {
		mode, healed := c.h.partition()
		if mode != PartitionBoth && mode != PartitionInbound {
			break
		}
		blocked = true
		c.h.metrics.BlockedReads.Add(1)
		select {
		case <-healed:
			// Healed: re-check (a new partition may already be up).
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	if blocked {
		// Clear any poison left by SetPartition before touching the wire.
		c.Conn.SetReadDeadline(time.Time{})
	}
	f := c.readFrames
	c.readFrames++
	if c.h.cfg.DelayRate > 0 && c.h.roll("delay", c.idx, f) < c.h.cfg.DelayRate {
		c.h.metrics.Delays.Add(1)
		c.h.cfg.Sleeper.Sleep(c.h.cfg.Delay)
	}
	if c.drip && len(b) > dripChunk {
		c.h.cfg.Sleeper.Sleep(c.h.cfg.DripDelay)
		b = b[:dripChunk]
	}
	n, err := c.Conn.Read(b)
	if err != nil && isNetTimeout(err) {
		// The wire server never sets read deadlines, so a server-side read
		// timeout can only be partition poison: re-enter to park (or, if
		// the heal raced the poison, clear the deadline and read clean —
		// the retried read carries no deadline, so this terminates).
		if mode, _ := c.h.partition(); mode != PartitionBoth && mode != PartitionInbound {
			c.Conn.SetReadDeadline(time.Time{})
		}
		return c.Read(b)
	}
	return n, err
}

// isNetTimeout reports whether err is a net timeout (deadline poison).
func isNetTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Write swallows frames under an outbound-affecting partition (reporting
// success — the gray failure) and fires scheduled mid-frame resets.
func (c *netConn) Write(b []byte) (int, error) {
	mode, _ := c.h.partition()
	if mode == PartitionBoth || mode == PartitionOutbound {
		c.h.metrics.SwallowedWrites.Add(1)
		return len(b), nil
	}
	f := c.h.writeFrames.Add(1)
	if c.h.dueReset(f) {
		written := 0
		if half := len(b) / 2; half > 0 {
			written, _ = c.Conn.Write(b[:half])
		}
		c.h.metrics.Resets.Add(1)
		c.Close()
		return written, net.ErrClosed
	}
	return c.Conn.Write(b)
}

// Close implements net.Conn, waking any read parked against a partition.
func (c *netConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.h.mu.Lock()
		delete(c.h.conns, c)
		c.h.mu.Unlock()
	})
	return c.Conn.Close()
}
