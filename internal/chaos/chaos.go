// Package chaos is a deterministic, seed-driven fault-injection harness
// for AFT: a storage.Store wrapper that injects transient errors, partial
// batch failures, latency spikes, and scheduled crash points; a
// redo-until-commit workload runner that feeds the history checker
// (internal/checker); and a kill/restart scheduler that drives node
// crashes, standby promotion, and fault-manager recovery mid-workload.
//
// Determinism contract: with faults enabled, every storage operation draws
// a fixed number of samples from one seeded source, so a workload that
// issues a deterministic operation SEQUENCE (a single driver goroutine, or
// any phase where only one goroutine touches storage) sees bit-for-bit
// identical fault decisions run over run. Partial-batch key selection is
// derived from key hashes, not draws, so it is independent of Go's map
// iteration order. Concurrent workloads (the -race stress tests) lose
// sequence determinism but keep the same fault distribution.
//
// Injected failures are fail-stop per operation: an injected error means
// the underlying engine did not perform the failed (portion of the)
// operation. Partial batch failures apply a deterministic subset of the
// batch and then fail — exactly the non-atomic batch behaviour
// storage.Store permits and AFT's commit protocol (§3.3 of the paper) must
// tolerate.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aft/internal/latency"
	"aft/internal/storage"
	"aft/internal/strhash"
)

// ErrInjected marks every chaos-injected failure. Injected errors also
// match storage.ErrUnavailable, so they cross the wire protocol as the
// retriable ErrCodeUnavailable and clients exercise their real transient-
// error handling.
var ErrInjected = errors.New("chaos: injected fault")

// errTransient is the shared wrap target: errors.Is matches both
// ErrInjected and storage.ErrUnavailable.
var errTransient = fmt.Errorf("%w: %w", storage.ErrUnavailable, ErrInjected)

// Config parameterizes fault injection. All rates are probabilities in
// [0, 1] applied per storage operation.
type Config struct {
	// Seed drives every injection decision.
	Seed int64
	// ErrorRate is the transient full-failure probability: the operation
	// fails before the engine applies anything.
	ErrorRate float64
	// PartialRate is the partial-failure probability for batch operations
	// (BatchPut, BatchGet, BatchDelete): a deterministic subset of the
	// keys is applied, the rest fail, and the call returns an error.
	PartialRate float64
	// SpikeRate is the latency-spike probability.
	SpikeRate float64
	// Spike is the injected spike duration (modeled time, scaled by
	// Sleeper); 0 defaults to 50ms.
	Spike time.Duration
	// Sleeper injects spikes; nil never sleeps (spikes still count).
	Sleeper *latency.Sleeper
}

// Metrics counts injected faults. All fields are atomic.
type Metrics struct {
	Ops                 atomic.Int64 // operations that passed through the wrapper
	Errors              atomic.Int64 // transient full failures injected
	PartialBatchPuts    atomic.Int64 // BatchPut calls partially applied then failed
	PartialBatchGets    atomic.Int64 // BatchGet calls partially answered then failed
	PartialBatchDeletes atomic.Int64 // BatchDelete calls partially applied then failed
	Spikes              atomic.Int64 // latency spikes injected
	Crashes             atomic.Int64 // crash hooks fired
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	Ops, Errors, PartialBatchPuts, PartialBatchGets,
	PartialBatchDeletes, Spikes, Crashes int64
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Ops: m.Ops.Load(), Errors: m.Errors.Load(),
		PartialBatchPuts: m.PartialBatchPuts.Load(), PartialBatchGets: m.PartialBatchGets.Load(),
		PartialBatchDeletes: m.PartialBatchDeletes.Load(),
		Spikes:              m.Spikes.Load(), Crashes: m.Crashes.Load(),
	}
}

// crashHook is one scheduled crash point.
type crashHook struct {
	at int64
	fn func()
}

// Store wraps an inner storage.Store with fault injection. With faults
// disabled (the initial state) it is a transparent pass-through and
// satisfies the full storagetest conformance contract of the inner engine.
type Store struct {
	inner storage.Store
	cfg   Config

	enabled atomic.Bool
	ops     atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand

	hookMu    sync.Mutex
	hooks     []crashHook
	hookCount atomic.Int32

	metrics Metrics
}

// Wrap returns inner behind a fault injector. Injection starts DISABLED so
// setup phases (seeding, bootstrap) run clean; call SetEnabled(true) to
// start the chaos.
func Wrap(inner storage.Store, cfg Config) *Store {
	if cfg.Spike == 0 {
		cfg.Spike = 50 * time.Millisecond
	}
	return &Store{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetEnabled toggles fault injection. Disabling also stops consuming
// random draws, so a disabled phase never perturbs the deterministic
// decision stream of the next enabled phase.
func (s *Store) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether faults are being injected.
func (s *Store) Enabled() bool { return s.enabled.Load() }

// FaultMetrics returns the injection counters.
func (s *Store) FaultMetrics() *Metrics { return &s.metrics }

// Ops returns the number of storage operations seen so far (the clock
// CrashAfter schedules against).
func (s *Store) Ops() int64 { return s.ops.Load() }

// CrashAfter schedules fn to run synchronously at the start of the first
// storage operation after delta more operations have begun — a precise
// crash point for tests that must kill a node mid-protocol (e.g. between a
// commit's data write and its record write). Hooks fire exactly once, even
// with faults disabled.
func (s *Store) CrashAfter(delta int64, fn func()) {
	s.hookMu.Lock()
	s.hooks = append(s.hooks, crashHook{at: s.ops.Load() + delta, fn: fn})
	s.hookMu.Unlock()
	s.hookCount.Add(1)
}

// advance ticks the operation clock and fires due crash hooks.
func (s *Store) advance() int64 {
	n := s.ops.Add(1)
	s.metrics.Ops.Add(1)
	if s.hookCount.Load() > 0 {
		s.fireHooks(n)
	}
	return n
}

func (s *Store) fireHooks(n int64) {
	s.hookMu.Lock()
	var due []func()
	kept := s.hooks[:0]
	for _, h := range s.hooks {
		if h.at <= n {
			due = append(due, h.fn)
		} else {
			kept = append(kept, h)
		}
	}
	s.hooks = kept
	s.hookCount.Store(int32(len(kept)))
	s.hookMu.Unlock()
	for _, fn := range due {
		s.metrics.Crashes.Add(1)
		fn()
	}
}

// batch-operation fault modes.
const (
	modeOK = iota
	modeFail
	modePartial
)

// draw samples one operation's fault decisions: exactly two draws per
// operation, always in the same order, so the decision stream is a pure
// function of the seed and the operation sequence.
func (s *Store) draw(batch bool) (spike bool, mode int) {
	s.mu.Lock()
	sp := s.rng.Float64()
	fa := s.rng.Float64()
	s.mu.Unlock()
	spike = sp < s.cfg.SpikeRate
	switch {
	case fa < s.cfg.ErrorRate:
		mode = modeFail
	case batch && fa < s.cfg.ErrorRate+s.cfg.PartialRate:
		mode = modePartial
	default:
		mode = modeOK
	}
	return spike, mode
}

// gate runs the per-operation injection protocol for a point operation,
// returning a non-nil error when the operation must fail.
func (s *Store) gate(op string) error {
	s.advance()
	if !s.enabled.Load() {
		return nil
	}
	spike, mode := s.draw(false)
	if spike {
		s.spike()
	}
	if mode != modeOK {
		s.metrics.Errors.Add(1)
		return fmt.Errorf("chaos: injected transient %s failure: %w", op, errTransient)
	}
	return nil
}

// gateBatch is gate for batch operations, additionally reporting the
// partial-failure mode.
func (s *Store) gateBatch(op string) (int, error) {
	s.advance()
	if !s.enabled.Load() {
		return modeOK, nil
	}
	spike, mode := s.draw(true)
	if spike {
		s.spike()
	}
	if mode == modeFail {
		s.metrics.Errors.Add(1)
		return mode, fmt.Errorf("chaos: injected transient %s failure: %w", op, errTransient)
	}
	return mode, nil
}

func (s *Store) spike() {
	s.metrics.Spikes.Add(1)
	s.cfg.Sleeper.Sleep(s.cfg.Spike)
}

// split partitions keys into the applied and failed halves of a partial
// batch failure. The choice is a pure function of the seed and each key,
// so it is independent of both map iteration order and operation order; at
// least one key always fails (otherwise the "partial" failure would be a
// clean success with a spurious error).
func (s *Store) split(keys []string) (applied, failed []string) {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	mix := uint32(s.cfg.Seed)*2654435761 | 1
	for _, k := range sorted {
		// Decide on a middle bit of the mixed hash: multiplying by an odd
		// constant never changes the LOW bit, so selecting on bit 0 would
		// ignore the seed entirely.
		if (strhash.FNV32a(k)*mix>>16)&1 == 0 {
			applied = append(applied, k)
		} else {
			failed = append(failed, k)
		}
	}
	if len(failed) == 0 {
		failed = append(failed, applied[len(applied)-1])
		applied = applied[:len(applied)-1]
	}
	return applied, failed
}

// partialErr builds the error a partially-applied batch returns.
func partialErr(op string, failed, total int) error {
	return fmt.Errorf("chaos: injected partial %s failure (%d/%d keys failed): %w",
		op, failed, total, errTransient)
}

// Name implements storage.Store (transparent: the inner engine's name).
func (s *Store) Name() string { return s.inner.Name() }

// Capabilities implements storage.Store.
func (s *Store) Capabilities() storage.Capabilities { return s.inner.Capabilities() }

// Metrics forwards the inner engine's operation metrics when it exposes
// them (the storagetest chunking contract asserts through this), or an
// inert zero-valued set otherwise.
func (s *Store) Metrics() *storage.Metrics {
	if m, ok := s.inner.(interface{ Metrics() *storage.Metrics }); ok {
		return m.Metrics()
	}
	return &inertMetrics
}

var inertMetrics storage.Metrics

// Get implements storage.Store.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.gate("Get"); err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, key)
}

// Put implements storage.Store.
func (s *Store) Put(ctx context.Context, key string, value []byte) error {
	if err := s.gate("Put"); err != nil {
		return err
	}
	return s.inner.Put(ctx, key, value)
}

// Delete implements storage.Store.
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.gate("Delete"); err != nil {
		return err
	}
	return s.inner.Delete(ctx, key)
}

// List implements storage.Store.
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.gate("List"); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, prefix)
}

// BatchPut implements storage.Store. A partial failure durably applies a
// deterministic subset of the items and fails the rest — the non-atomic
// batch behaviour the Store contract permits and §3.3 must tolerate.
func (s *Store) BatchPut(ctx context.Context, items map[string][]byte) error {
	mode, err := s.gateBatch("BatchPut")
	if err != nil {
		return err
	}
	if mode != modePartial || len(items) < 2 {
		return s.inner.BatchPut(ctx, items)
	}
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	applied, failed := s.split(keys)
	if len(applied) > 0 {
		sub := make(map[string][]byte, len(applied))
		for _, k := range applied {
			sub[k] = items[k]
		}
		if err := s.inner.BatchPut(ctx, sub); err != nil {
			// The engine itself refused (e.g. ErrBatchUnsupported):
			// surface ITS error so callers take their real fallback path.
			return err
		}
	}
	s.metrics.PartialBatchPuts.Add(1)
	return partialErr("BatchPut", len(failed), len(items))
}

// BatchGet implements storage.Store. A partial failure returns the values
// of a deterministic subset of the keys TOGETHER WITH an error; per the
// Store contract an errored read must not be trusted, so conforming
// callers retry the whole call.
func (s *Store) BatchGet(ctx context.Context, keys []string) (map[string][]byte, error) {
	mode, err := s.gateBatch("BatchGet")
	if err != nil {
		return nil, err
	}
	if mode != modePartial || len(keys) < 2 {
		return s.inner.BatchGet(ctx, keys)
	}
	applied, failed := s.split(keys)
	out, err := s.inner.BatchGet(ctx, applied)
	if err != nil {
		return nil, err
	}
	s.metrics.PartialBatchGets.Add(1)
	return out, partialErr("BatchGet", len(failed), len(keys))
}

// BatchDelete implements storage.Store. A partial failure deletes a
// deterministic subset of the keys and fails the rest.
func (s *Store) BatchDelete(ctx context.Context, keys []string) error {
	mode, err := s.gateBatch("BatchDelete")
	if err != nil {
		return err
	}
	if mode != modePartial || len(keys) < 2 {
		return s.inner.BatchDelete(ctx, keys)
	}
	applied, failed := s.split(keys)
	if err := s.inner.BatchDelete(ctx, applied); err != nil {
		return err
	}
	s.metrics.PartialBatchDeletes.Add(1)
	return partialErr("BatchDelete", len(failed), len(keys))
}
