package chaos

import "aft/internal/telemetry"

// RegisterTelemetry publishes the injector's fault counters under
// aft_chaos_*, so a campaign's injected-fault volume is scrapeable next to
// the verdict it produced (checker.RegisterVerdict).
func (s *Store) RegisterTelemetry(reg *telemetry.Registry) {
	if s == nil {
		return
	}
	m := &s.metrics
	reg.Register(func(e *telemetry.Emitter) {
		f := m.Snapshot()
		e.Counter("aft_chaos_ops_total",
			"Storage operations through the fault injector.", uint64(f.Ops))
		e.Counter("aft_chaos_errors_total",
			"Transient full failures injected.", uint64(f.Errors))
		e.Counter("aft_chaos_partial_batch_puts_total",
			"BatchPut calls partially applied then failed.", uint64(f.PartialBatchPuts))
		e.Counter("aft_chaos_partial_batch_gets_total",
			"BatchGet calls partially answered then failed.", uint64(f.PartialBatchGets))
		e.Counter("aft_chaos_partial_batch_deletes_total",
			"BatchDelete calls partially applied then failed.", uint64(f.PartialBatchDeletes))
		e.Counter("aft_chaos_spikes_total",
			"Latency spikes injected.", uint64(f.Spikes))
		e.Counter("aft_chaos_crashes_total",
			"Crash hooks fired.", uint64(f.Crashes))
	})
}
