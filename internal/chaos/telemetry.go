package chaos

import "aft/internal/telemetry"

// RegisterTelemetry publishes the injector's fault counters under
// aft_chaos_*, so a campaign's injected-fault volume is scrapeable next to
// the verdict it produced (checker.RegisterVerdict).
func (s *Store) RegisterTelemetry(reg *telemetry.Registry) {
	if s == nil {
		return
	}
	m := &s.metrics
	reg.Register(func(e *telemetry.Emitter) {
		f := m.Snapshot()
		e.Counter("aft_chaos_ops_total",
			"Storage operations through the fault injector.", uint64(f.Ops))
		e.Counter("aft_chaos_errors_total",
			"Transient full failures injected.", uint64(f.Errors))
		e.Counter("aft_chaos_partial_batch_puts_total",
			"BatchPut calls partially applied then failed.", uint64(f.PartialBatchPuts))
		e.Counter("aft_chaos_partial_batch_gets_total",
			"BatchGet calls partially answered then failed.", uint64(f.PartialBatchGets))
		e.Counter("aft_chaos_partial_batch_deletes_total",
			"BatchDelete calls partially applied then failed.", uint64(f.PartialBatchDeletes))
		e.Counter("aft_chaos_spikes_total",
			"Latency spikes injected.", uint64(f.Spikes))
		e.Counter("aft_chaos_crashes_total",
			"Crash hooks fired.", uint64(f.Crashes))
	})
}

// RegisterTelemetry publishes the network injector's fault counters under
// aft_chaos_net_*, the wire-level sibling of the storage injector's
// aft_chaos_* families.
func (n *NetChaos) RegisterTelemetry(reg *telemetry.Registry) {
	if n == nil {
		return
	}
	m := &n.metrics
	reg.Register(func(e *telemetry.Emitter) {
		f := m.Snapshot()
		e.Counter("aft_chaos_net_conns_total",
			"Connections accepted through the network fault injector.", uint64(f.Conns))
		e.Counter("aft_chaos_net_partitions_total",
			"Blackhole partitions installed.", uint64(f.Partitions))
		e.Counter("aft_chaos_net_heals_total",
			"Partitions healed.", uint64(f.Heals))
		e.Counter("aft_chaos_net_blackholed_conns_total",
			"Connections accepted inside a partition window.", uint64(f.BlackholedConns))
		e.Counter("aft_chaos_net_blocked_reads_total",
			"Reads that blocked against a partition.", uint64(f.BlockedReads))
		e.Counter("aft_chaos_net_swallowed_writes_total",
			"Server writes swallowed by an outbound blackhole.", uint64(f.SwallowedWrites))
		e.Counter("aft_chaos_net_resets_total",
			"Scheduled mid-frame connection resets fired.", uint64(f.Resets))
		e.Counter("aft_chaos_net_delays_total",
			"Network delay spikes injected.", uint64(f.Delays))
		e.Counter("aft_chaos_net_dripped_conns_total",
			"Connections selected for slow-drip reads.", uint64(f.DrippedConns))
	})
}
