package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"aft/internal/storage"
	"aft/internal/storage/dynamosim"
	"aft/internal/storage/redissim"
	"aft/internal/storage/s3sim"
	"aft/internal/storage/storagetest"
)

// TestConformanceTransparentWithFaultsDisabled runs the full storagetest
// conformance suite (including the batch contracts) against the chaos
// wrapper over every simulated engine, with faults disabled: the wrapper
// must be an indistinguishable storage.Store.
func TestConformanceTransparentWithFaultsDisabled(t *testing.T) {
	engines := map[string]func() storage.Store{
		"dynamodb": func() storage.Store { return dynamosim.New(dynamosim.Options{}) },
		"s3":       func() storage.Store { return s3sim.New(s3sim.Options{}) },
		"redis":    func() storage.Store { return redissim.New(redissim.Options{Shards: 4}) },
	}
	for name, inner := range engines {
		t.Run(name, func(t *testing.T) {
			storagetest.Run(t, func() storage.Store {
				return Wrap(inner(), Config{Seed: 1})
			})
		})
	}
}

// TestConformanceZeroRatesEnabled proves enabling injection with all rates
// at zero is still transparent (the gate draws but never fires).
func TestConformanceZeroRatesEnabled(t *testing.T) {
	storagetest.Run(t, func() storage.Store {
		s := Wrap(dynamosim.New(dynamosim.Options{}), Config{Seed: 7})
		s.SetEnabled(true)
		return s
	})
}

func TestInjectedErrorsMatchBothSentinels(t *testing.T) {
	s := Wrap(dynamosim.New(dynamosim.Options{}), Config{Seed: 3, ErrorRate: 1})
	s.SetEnabled(true)
	_, err := s.Get(context.Background(), "k")
	if err == nil {
		t.Fatal("ErrorRate=1 Get succeeded")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("injected error %v must match ErrInjected and storage.ErrUnavailable", err)
	}
	if s.FaultMetrics().Snapshot().Errors != 1 {
		t.Fatalf("Errors = %d, want 1", s.FaultMetrics().Snapshot().Errors)
	}
	// The failure was injected BEFORE the engine applied anything.
	s.SetEnabled(false)
	if err := s.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.SetEnabled(true)
	if err := s.Put(context.Background(), "k", []byte("v2")); err == nil {
		t.Fatal("ErrorRate=1 Put succeeded")
	}
	s.SetEnabled(false)
	if v, err := s.Get(context.Background(), "k"); err != nil || string(v) != "v" {
		t.Fatalf("failed Put leaked state: %q, %v", v, err)
	}
}

// TestPartialBatchPut verifies the partial-failure contract: a
// deterministic subset of the batch is durably applied, at least one key
// fails, and the call errors.
func TestPartialBatchPut(t *testing.T) {
	ctx := context.Background()
	inner := dynamosim.New(dynamosim.Options{})
	s := Wrap(inner, Config{Seed: 5, PartialRate: 1})
	s.SetEnabled(true)

	items := make(map[string][]byte)
	for i := 0; i < 10; i++ {
		items[fmt.Sprintf("pk-%d", i)] = []byte{byte(i)}
	}
	err := s.BatchPut(ctx, items)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial BatchPut = %v, want injected error", err)
	}
	s.SetEnabled(false)
	applied, failed := 0, 0
	for k := range items {
		if _, err := inner.Get(ctx, k); err == nil {
			applied++
		} else {
			failed++
		}
	}
	if applied == 0 || failed == 0 {
		t.Fatalf("partial BatchPut applied %d / failed %d keys, want both nonzero", applied, failed)
	}
	if got := s.FaultMetrics().Snapshot().PartialBatchPuts; got != 1 {
		t.Fatalf("PartialBatchPuts = %d, want 1", got)
	}

	// The applied/failed partition is a pure function of seed and keys.
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	a1, f1 := s.split(keys)
	a2, f2 := s.split(keys)
	if fmt.Sprint(a1, f1) != fmt.Sprint(a2, f2) {
		t.Fatal("split is not deterministic")
	}
	if len(f1) == 0 {
		t.Fatal("split failed no keys")
	}
}

func TestPartialBatchGetReturnsSubsetAndError(t *testing.T) {
	ctx := context.Background()
	inner := dynamosim.New(dynamosim.Options{})
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("g-%d", i)
		if err := inner.Put(ctx, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := Wrap(inner, Config{Seed: 9, PartialRate: 1})
	s.SetEnabled(true)
	got, err := s.BatchGet(ctx, keys)
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("partial BatchGet err = %v, want transient", err)
	}
	if len(got) == 0 || len(got) >= len(keys) {
		t.Fatalf("partial BatchGet returned %d/%d values, want a strict subset", len(got), len(keys))
	}
}

func TestPartialBatchDelete(t *testing.T) {
	ctx := context.Background()
	inner := dynamosim.New(dynamosim.Options{})
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("d-%d", i)
		if err := inner.Put(ctx, keys[i], []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	s := Wrap(inner, Config{Seed: 11, PartialRate: 1})
	s.SetEnabled(true)
	if err := s.BatchDelete(ctx, keys); !errors.Is(err, ErrInjected) {
		t.Fatalf("partial BatchDelete = %v, want injected error", err)
	}
	deleted, remaining := 0, 0
	for _, k := range keys {
		if _, err := inner.Get(ctx, k); errors.Is(err, storage.ErrNotFound) {
			deleted++
		} else {
			remaining++
		}
	}
	if deleted == 0 || remaining == 0 {
		t.Fatalf("partial BatchDelete deleted %d / kept %d, want both nonzero", deleted, remaining)
	}
}

// TestDeterministicDecisionStream replays one operation sequence against
// two wrappers with the same seed: every fault decision must land on the
// same operation.
func TestDeterministicDecisionStream(t *testing.T) {
	run := func() ([]int, MetricsSnapshot) {
		ctx := context.Background()
		s := Wrap(dynamosim.New(dynamosim.Options{}), Config{Seed: 21, ErrorRate: 0.2, PartialRate: 0.3, SpikeRate: 0.1})
		s.SetEnabled(true)
		var failedAt []int
		for i := 0; i < 200; i++ {
			var err error
			switch i % 4 {
			case 0:
				err = s.Put(ctx, fmt.Sprintf("k-%d", i), []byte{1})
			case 1:
				_, err = s.Get(ctx, fmt.Sprintf("k-%d", i-1))
			case 2:
				err = s.BatchPut(ctx, map[string][]byte{
					fmt.Sprintf("b-%d-a", i): {1}, fmt.Sprintf("b-%d-b", i): {2},
				})
			case 3:
				_, err = s.List(ctx, "k-")
			}
			if err != nil {
				failedAt = append(failedAt, i)
			}
		}
		return failedAt, s.FaultMetrics().Snapshot()
	}
	f1, m1 := run()
	f2, m2 := run()
	if fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Fatalf("fault positions differ:\n%v\n%v", f1, f2)
	}
	if m1 != m2 {
		t.Fatalf("metrics differ: %+v vs %+v", m1, m2)
	}
	if len(f1) == 0 {
		t.Fatal("no faults fired at these rates")
	}
}

// TestCrashAfterFiresOnceAtTheScheduledOperation verifies scheduled crash
// points: the hook runs synchronously at the chosen operation and exactly
// once.
func TestCrashAfterFiresOnceAtTheScheduledOperation(t *testing.T) {
	ctx := context.Background()
	s := Wrap(dynamosim.New(dynamosim.Options{}), Config{Seed: 1})
	fired := 0
	var atOp int64
	if err := s.Put(ctx, "warm", nil); err != nil {
		t.Fatal(err)
	}
	s.CrashAfter(3, func() { fired++; atOp = s.Ops() })
	for i := 0; i < 6; i++ {
		if err := s.Put(ctx, fmt.Sprintf("k-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Fatalf("crash hook fired %d times, want 1", fired)
	}
	if atOp != 4 {
		t.Fatalf("crash hook fired at op %d, want 4 (1 warm-up + 3)", atOp)
	}
	if s.FaultMetrics().Snapshot().Crashes != 1 {
		t.Fatal("Crashes metric not counted")
	}
}
