package chaos

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"aft/internal/checker"
	"aft/internal/cluster"
	"aft/internal/core"
	"aft/internal/storage/dynamosim"
	"aft/internal/workload"
)

// TestClusterKillPromotionStress is the concurrent crash-recovery stress
// test (run under -race in CI): a cluster with live multicast and GC loops
// serves a concurrent read/write workload through fault injection while
// nodes are killed and standbys promoted mid-flight; afterwards the
// history checker — not hand-rolled assertions — proves the §3.2
// guarantees held and nothing committed was lost.
func TestClusterKillPromotionStress(t *testing.T) {
	ctx := context.Background()
	const (
		nodes    = 3
		kills    = 2
		keys     = 64
		workers  = 8
		minReqs  = 25 // per worker, and workers keep going until kills finish
		killGap  = 25 * time.Millisecond
		deadline = 30 * time.Second
	)

	st := Wrap(dynamosim.New(dynamosim.Options{}), Config{
		Seed: 1, ErrorRate: 0.01, PartialRate: 0.05,
	})
	c, err := cluster.New(cluster.Config{
		Nodes:            nodes,
		Standbys:         kills,
		Store:            st,
		Node:             core.Config{EnableDataCache: true},
		MulticastPeriod:  2 * time.Millisecond,
		PruneMulticast:   true,
		LocalGCInterval:  3 * time.Millisecond,
		GlobalGCInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	check := checker.New()
	runner := &Runner{Client: c.Client(), Payload: workload.Payload(1, 128), Check: check}

	// Seed every key clean before the chaos starts.
	for start := 0; start < keys; start += 16 {
		var ops []workload.Op
		for i := start; i < start+16 && i < keys; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: workload.KeyName(i)})
		}
		if err := runner.Do(ctx, workload.Request{Funcs: [][]workload.Op{ops}}); err != nil {
			t.Fatalf("seeding: %v", err)
		}
	}
	st.SetEnabled(true)

	// The killer: crash a node, wait out the standby promotion, recover
	// via the fault manager's scan, repeat — all while workers hammer the
	// cluster (in-flight transactions on the victim fail over and redo).
	killsDone := make(chan struct{})
	killerErr := make(chan error, 1)
	go func() {
		defer close(killsDone)
		for k := 0; k < kills; k++ {
			time.Sleep(killGap)
			live := c.Nodes()
			ids := make([]string, len(live))
			for i, n := range live {
				ids[i] = n.ID()
			}
			sort.Strings(ids)
			victim := ids[k%len(ids)]
			if err := c.Kill(victim); err != nil {
				killerErr <- err
				return
			}
			limit := time.Now().Add(deadline)
			for len(c.Nodes()) < nodes {
				if time.Now().After(limit) {
					killerErr <- fmt.Errorf("standby promotion after killing %s timed out", victim)
					return
				}
				time.Sleep(time.Millisecond)
			}
			if err := Retry(ctx, 20, func() error {
				return c.FaultManager().ScanStorage(ctx)
			}); err != nil {
				killerErr <- fmt.Errorf("post-kill scan: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	workerErr := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGenerator(int64(100+w), workload.NewZipf(int64(200+w), keys, 1.0), 2, 2, 2)
			for i := 0; ; i++ {
				if i >= minReqs {
					select {
					case <-killsDone:
						return
					default:
					}
				}
				if err := runner.Do(ctx, gen.Next()); err != nil {
					workerErr <- fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(workerErr)
	if err := <-workerErr; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-killerErr:
		t.Fatal(err)
	default:
	}

	// Quiesce and audit: faults off, full exchange and recovery, ground
	// truth from storage, then the checker's verdict over the complete
	// concurrent history.
	st.SetEnabled(false)
	c.FlushMulticast()
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		n.SweepLocalMetadata(0)
	}
	if _, err := c.FaultManager().CollectOnce(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		t.Fatal(err)
	}
	keyNames := make([]string, keys)
	for i := range keyNames {
		keyNames[i] = workload.KeyName(i)
	}
	final, err := runner.FinalState(ctx, keyNames)
	if err != nil {
		t.Fatal(err)
	}
	v := check.Verdict(final)
	if !v.Clean() {
		t.Fatalf("verdict: %s\nviolations:\n%v", v, v.Violations)
	}
	rm := runner.Metrics().Snapshot()
	if rm.Commits < int64(workers*minReqs) {
		t.Fatalf("committed %d requests, want >= %d", rm.Commits, workers*minReqs)
	}
	t.Logf("verdict %s; runner %+v; faults %+v", v, rm, st.FaultMetrics().Snapshot())
}

// TestCrashPointBetweenDataAndRecordWrite schedules a node kill exactly
// inside a commit's write-ordering window — after the data-version
// BatchPut begins, before the commit record lands — and verifies the §3.3
// guarantee: the half-written transaction either becomes fully visible
// (its record survived) or leaves no trace, never a partial state, and the
// client-side redo converges.
func TestCrashPointBetweenDataAndRecordWrite(t *testing.T) {
	ctx := context.Background()
	st := Wrap(dynamosim.New(dynamosim.Options{}), Config{Seed: 2})
	c, err := cluster.New(cluster.Config{
		Nodes:           2,
		Standbys:        1,
		Store:           st,
		Node:            core.Config{EnableDataCache: true},
		MulticastPeriod: 2 * time.Millisecond,
		PruneMulticast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	check := checker.New()
	runner := &Runner{Client: c.Client(), Payload: workload.Payload(2, 64), Check: check}
	seedReq := workload.Request{Funcs: [][]workload.Op{{
		{Kind: workload.OpWrite, Key: "x"}, {Kind: workload.OpWrite, Key: "y"},
	}}}
	if err := runner.Do(ctx, seedReq); err != nil {
		t.Fatal(err)
	}

	// Kill whichever node serves the next commit, one storage operation
	// after the commit's first write begins: the data phase has started,
	// the record is not yet durable. (Hooks fire exactly once.)
	st.CrashAfter(1, func() {
		for _, n := range c.Nodes() {
			if n.ActiveTransactions() > 0 {
				_ = c.Kill(n.ID())
				return
			}
		}
	})
	if err := runner.Do(ctx, seedReq); err != nil {
		t.Fatal(err)
	}

	// Converge and audit.
	limit := time.Now().Add(10 * time.Second)
	for len(c.Nodes()) < 2 && time.Now().Before(limit) {
		time.Sleep(time.Millisecond)
	}
	c.FlushMulticast()
	if err := c.FaultManager().ScanStorage(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := check.ResolveStorage(ctx, st); err != nil {
		t.Fatal(err)
	}
	final, err := runner.FinalState(ctx, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 2 {
		t.Fatalf("final state has %d keys, want 2", len(final))
	}
	if final["x"].UUID != final["y"].UUID {
		t.Fatalf("fractured final state: x from %s, y from %s", final["x"].UUID, final["y"].UUID)
	}
	if v := check.Verdict(final); !v.Clean() {
		t.Fatalf("verdict: %s\n%v", v, v.Violations)
	}
}
