package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aft/internal/cluster"
)

// PlanKills returns a deterministic ascending schedule of n distinct
// request indices in [lo, hi) at which a node kill should fire. It is the
// seed-derived "kill schedule" of a chaos run.
func PlanKills(seed int64, n, lo, hi int) []int {
	if hi <= lo || n <= 0 {
		return nil
	}
	if n > hi-lo {
		n = hi - lo
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6b696c6c)) // "kill"
	picked := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		at := lo + rng.Intn(hi-lo)
		if !picked[at] {
			picked[at] = true
			out = append(out, at)
		}
	}
	sort.Ints(out)
	return out
}

// Scheduler drives crash-recovery events against a running cluster on a
// deterministic schedule: at each planned point it kills one seeded-random
// live node (unflushed multicast state and all, the §4.2 liveness hazard),
// blocks until the pre-allocated standby has been promoted in its place,
// and then runs the fault manager's storage scan so commits the victim
// acknowledged but never broadcast become visible to the survivors.
//
// Blocking until promotion completes is what keeps a sequential driver's
// storage-operation sequence deterministic: the replacement node's
// bootstrap is the only storage traffic while the driver waits.
type Scheduler struct {
	c   *cluster.Cluster
	rng *rand.Rand
	// pending is the ascending request-index schedule.
	pending []int
	// target is the live-node count a promotion must restore.
	target int
	// PromotionTimeout bounds one promotion wait (wall clock); zero
	// defaults to 30s.
	PromotionTimeout time.Duration

	kills      int
	promotions int
}

// NewScheduler returns a Scheduler firing at the given ascending request
// indices. The victim choice at each firing is derived from seed.
func NewScheduler(c *cluster.Cluster, seed int64, killAt []int) *Scheduler {
	return &Scheduler{
		c:       c,
		rng:     rand.New(rand.NewSource(seed ^ 0x766963)), // "vic"
		pending: append([]int(nil), killAt...),
		target:  len(c.Nodes()),
	}
}

// Kills returns how many kills have fired.
func (s *Scheduler) Kills() int { return s.kills }

// Promotions returns how many standby promotions completed.
func (s *Scheduler) Promotions() int { return s.promotions }

// Pending returns how many scheduled kills have not fired yet.
func (s *Scheduler) Pending() int { return len(s.pending) }

// Tick fires every kill scheduled at or before the given completed-request
// count. It returns once the cluster is whole again and recovery has run.
func (s *Scheduler) Tick(ctx context.Context, completed int) error {
	for len(s.pending) > 0 && completed >= s.pending[0] {
		s.pending = s.pending[1:]
		if err := s.killOne(ctx); err != nil {
			return err
		}
	}
	return nil
}

// killOne crashes one node, waits out the standby promotion, and recovers.
func (s *Scheduler) killOne(ctx context.Context) error {
	nodes := s.c.Nodes()
	if len(nodes) == 0 {
		return fmt.Errorf("chaos: no nodes left to kill")
	}
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
	}
	sort.Strings(ids) // Nodes() iterates a map; sort before the seeded pick
	victim := ids[s.rng.Intn(len(ids))]
	if err := s.c.Kill(victim); err != nil {
		return err
	}
	s.kills++

	timeout := s.PromotionTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for len(s.c.Nodes()) < s.target {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: standby promotion after killing %s timed out (%d/%d nodes)",
				victim, len(s.c.Nodes()), s.target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	s.promotions++

	// Recovery: flush the survivors' broadcasts, then scan storage so the
	// victim's unbroadcast commits are re-announced (§4.2). The scan runs
	// against the chaos store and may itself draw injected faults; retry.
	s.c.FlushMulticast()
	return Retry(ctx, 10, func() error { return s.c.FaultManager().ScanStorage(ctx) })
}

// Retry runs fn up to attempts times, stopping on success, on a
// non-retriable error, or on context cancellation. It is the maintenance
// loop's armor against its own injected faults.
func Retry(ctx context.Context, attempts int, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = fn(); err == nil || !Retriable(err) {
			return err
		}
	}
	return err
}
