package chaos

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoSrv is a byte-echo TCP server behind the network fault injector —
// enough protocol to observe partitions, resets, drips, and delays
// without dragging the wire package into this package's tests.
type echoSrv struct {
	t  *testing.T
	h  *NetChaos
	wg sync.WaitGroup

	mu    sync.Mutex
	conns []net.Conn
}

func startEcho(t *testing.T, cfg NetConfig) *echoSrv {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoSrv{t: t, h: WrapListener(raw, cfg)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			c, err := s.h.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(s.stop)
	return s
}

// stop closes the listener and every accepted conn, then waits for all
// handler goroutines — including ones parked against a partition — to
// exit. A hang here means partition parking leaks goroutines.
func (s *echoSrv) stop() {
	s.h.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *echoSrv) dial() net.Conn {
	s.t.Helper()
	c, err := net.Dial("tcp", s.h.Addr().String())
	if err != nil {
		s.t.Fatal(err)
	}
	s.t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and expects it echoed back within timeout.
func roundTrip(t *testing.T, c net.Conn, msg string, timeout time.Duration) error {
	t.Helper()
	c.SetDeadline(time.Now().Add(timeout))
	defer c.SetDeadline(time.Time{})
	if _, err := c.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		return err
	}
	if string(buf) != msg {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
	return nil
}

// TestNetChaosPassthrough: with no faults configured the wrapper is
// transparent.
func TestNetChaosPassthrough(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 1})
	c := s.dial()
	for i := 0; i < 3; i++ {
		if err := roundTrip(t, c, "hello", 2*time.Second); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	if got := s.h.NetFaultMetrics().Snapshot(); got.Conns != 1 || got.Delays != 0 || got.Resets != 0 {
		t.Fatalf("unexpected fault metrics on passthrough: %+v", got)
	}
}

// TestNetChaosPartitionBothAutoHeals: a two-way blackhole times out the
// existing conn AND fresh conns, then auto-heals on the configured accept
// — the heal-triggering conn is served clean.
func TestNetChaosPartitionBothAutoHeals(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 2})
	pooled := s.dial()
	if err := roundTrip(t, pooled, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	s.h.SetPartition(PartitionBoth, 2)

	// The already-established conn is blackholed too.
	if err := roundTrip(t, pooled, "lost", 150*time.Millisecond); !isNetTimeout(err) {
		t.Fatalf("pooled conn during partition: err = %v, want timeout", err)
	}
	// First redial lands inside the partition window.
	c1 := s.dial()
	if err := roundTrip(t, c1, "lost2", 150*time.Millisecond); !isNetTimeout(err) {
		t.Fatalf("conn during partition: err = %v, want timeout", err)
	}
	// Second redial is the configured heal point: served clean.
	c2 := s.dial()
	if err := roundTrip(t, c2, "healed", 2*time.Second); err != nil {
		t.Fatalf("heal-triggering conn: %v", err)
	}
	// And the pooled conn works again (its blocked handler woke on heal;
	// the bytes written during the partition were delivered after it).
	buf := make([]byte, len("lost"))
	pooled.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(pooled, buf); err != nil {
		t.Fatalf("pooled conn after heal: %v", err)
	}
	if string(buf) != "lost" {
		t.Fatalf("held bytes after heal = %q, want %q", buf, "lost")
	}

	got := s.h.NetFaultMetrics().Snapshot()
	if got.Partitions != 1 || got.Heals != 1 {
		t.Fatalf("partitions/heals = %d/%d, want 1/1", got.Partitions, got.Heals)
	}
	if got.BlackholedConns != 1 {
		t.Fatalf("blackholed conns = %d, want 1", got.BlackholedConns)
	}
	if got.BlockedReads == 0 {
		t.Fatal("no reads blocked during a Both partition")
	}
}

// TestNetChaosPartitionOutboundSwallows: the gray failure — requests
// flow and the server does the work, but its responses vanish and it
// believes they were delivered.
func TestNetChaosPartitionOutboundSwallows(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 3})
	c := s.dial()
	if err := roundTrip(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	s.h.SetPartition(PartitionOutbound, 0)
	if err := roundTrip(t, c, "ack-lost", 150*time.Millisecond); !isNetTimeout(err) {
		t.Fatalf("during outbound partition: err = %v, want timeout", err)
	}
	// The server-side write was swallowed, not blocked: the handler saw
	// success and is already parked on its next read.
	if got := s.h.NetFaultMetrics().Snapshot().SwallowedWrites; got == 0 {
		t.Fatal("no writes swallowed during outbound partition")
	}

	s.h.SetPartition(PartitionNone, 0) // manual heal
	if err := roundTrip(t, c, "after", 2*time.Second); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestNetChaosResetMidFrame: a scheduled reset cuts the conn after
// delivering only half of a response frame.
func TestNetChaosResetMidFrame(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 4})
	c := s.dial()
	if err := roundTrip(t, c, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	s.h.ResetAfterWrites(1)
	msg := []byte("12345678")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(c)
	if err != nil && isNetTimeout(err) {
		t.Fatalf("read after reset timed out (conn not cut); got %d bytes", len(got))
	}
	if len(got) >= len(msg) {
		t.Fatalf("received full frame (%d bytes) despite scheduled reset", len(got))
	}
	m := s.h.NetFaultMetrics().Snapshot()
	if m.Resets != 1 {
		t.Fatalf("resets = %d, want 1", m.Resets)
	}
	if s.h.PendingResets() != 0 {
		t.Fatalf("pending resets = %d, want 0", s.h.PendingResets())
	}
}

// TestNetChaosSlowDrip: with SlowDripRate 1 every conn limps — reads are
// dripped in small chunks but the stream stays correct.
func TestNetChaosSlowDrip(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 5, SlowDripRate: 1})
	c := s.dial()
	if err := roundTrip(t, c, "dripped-payload", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.h.NetFaultMetrics().Snapshot().DrippedConns; got != 1 {
		t.Fatalf("dripped conns = %d, want 1", got)
	}
}

// TestNetChaosDelayDeterminism: delay-spike decisions are hash-derived
// from (seed, conn, frame), so two identical sequential sessions against
// same-seed injectors inject identical spike counts.
func TestNetChaosDelayDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		s := startEcho(t, NetConfig{Seed: seed, DelayRate: 0.5})
		c := s.dial()
		for i := 0; i < 20; i++ {
			if err := roundTrip(t, c, "x", 2*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		return s.h.NetFaultMetrics().Snapshot().Delays
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same-seed delay counts differ: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("DelayRate 0.5 over 20 frames injected no delays")
	}
}

// TestNetChaosInboundFreshConnBlocks: a conn accepted inside an inbound
// partition has its very first read parked; heal releases it.
func TestNetChaosInboundFreshConnBlocks(t *testing.T) {
	s := startEcho(t, NetConfig{Seed: 6})
	s.h.SetPartition(PartitionInbound, 0)
	c := s.dial()
	if err := roundTrip(t, c, "held", 150*time.Millisecond); !isNetTimeout(err) {
		t.Fatalf("during inbound partition: err = %v, want timeout", err)
	}
	s.h.SetPartition(PartitionNone, 0)
	// The held request is delivered after heal and echoed.
	buf := make([]byte, 4)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if string(buf) != "held" {
		t.Fatalf("echo after heal = %q, want %q", buf, "held")
	}
}
