// Command aft-server runs one AFT node as a TCP service.
//
// Usage:
//
//	aft-server -addr :7070 -node node-1 -store dynamodb -latency none
//	aft-server -store wal -store-dir /var/lib/aft   # durable disk backend
//	aft-server -store wal -debug-addr :7071         # observability endpoints
//
// The node serves the Table 1 API (StartTransaction / Get / Put /
// CommitTransaction / AbortTransaction) over the repository's wire
// protocol; connect with cmd/aft-client or aft.Dial. The storage backend
// is one of the repository's simulated cloud stores, or the durable
// write-ahead-log engine (-store wal), whose state survives restarts in
// -store-dir; multiple servers
// launched with -store pointing at the same external process would
// require a networked store, so a single server owns its store (the
// multi-node protocols are exercised in-process via aft.NewCluster).
//
// The server also runs the single-node maintenance pipeline — the
// periodic multicast round (draining commit records to the fault-manager
// tap), the fault manager's storage scan, and the global GC pass — so a
// standalone deployment gets §4.2 recovery and §5.2 collection, and its
// /metrics endpoint exposes every subsystem's counters.
//
// With -debug-addr set, a side HTTP listener serves:
//
//	/metrics       Prometheus text exposition (all aft_* families)
//	/statz         the same registry snapshot as JSON (stable schema)
//	/traces        stitched traces, newest first (?trace_id= for one)
//	/events        flight-recorder event journal (?type=, ?node=, ?limit=)
//	/healthz       SLO burn-rate verdicts (503 when an objective pages)
//	/debug/pprof/  the Go profiler suite
//
// SIGQUIT (and a panic on the main goroutine) dumps the flight-recorder
// journal to -events-dump before the runtime's usual stack dump.
//
// SIGINT/SIGTERM shuts down gracefully: the listener stops accepting,
// in-flight transactions get up to -drain-timeout to finish (abandoned
// sessions are reaped by their propagated deadlines), the maintenance
// pipeline stops, and the store is flushed and closed. A second signal
// forces immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"aft/aft"
	"aft/internal/faultmgr"
	"aft/internal/lb"
	"aft/internal/multicast"
	"aft/internal/storage"
	"aft/internal/storage/walengine"
	"aft/internal/telemetry"
	"aft/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		nodeID    = flag.String("node", "aft-node-1", "node identifier")
		backend   = flag.String("store", "dynamodb", "storage backend: dynamodb|s3|redis|wal")
		storeDir  = flag.String("store-dir", "aft-wal", "log directory for -store wal")
		lat       = flag.String("latency", "none", "latency mode: none|cloud|cloud-fast (simulated backends only)")
		cache     = flag.Bool("cache", true, "enable the read data cache")
		seed      = flag.Int64("seed", 1, "latency model seed")
		debug     = flag.String("debug-addr", "", "HTTP address for /metrics, /statz, /traces and /debug/pprof/* (empty disables)")
		mcPeriod  = flag.Duration("multicast-period", time.Second, "multicast round period (the paper's 1s)")
		gcPeriod  = flag.Duration("gc-period", 30*time.Second, "fault-manager scan + global GC period")
		traceEach = flag.Int("trace-sample", 64, "self-sample 1 in N transactions into /traces (<=0 disables)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight transactions to finish")
		ckptEvery = flag.Duration("checkpoint-interval", 0, "WAL index checkpoint period for -store wal (0 disables; restarts then replay the full log)")
		budget    = flag.Int64("metadata-budget", 0, "metadata memory budget in bytes (0 = unbounded); past it the node spills cold commit records to storage")
		wireCodec = flag.String("wire-codec", "binary", "wire codec: binary (protocol v3, pipelined framing) | gob (pin the legacy lockstep codec; the server then advertises protocol v2)")
		traceRing = flag.Int("trace-ring", 256, "retained-trace ring capacity in entries")
		traceRB   = flag.Int64("trace-ring-bytes", 0, "retained-trace ring byte budget (0 = entry bound only); oldest traces are evicted first")
		eventsCap = flag.Int("events-ring", 4096, "flight-recorder event journal capacity in entries")
		eventsOut = flag.String("events-dump", "aft-events.jsonl", "file the event journal is dumped to on panic or SIGQUIT")
		sloCommit = flag.Duration("slo-commit-p99", 250*time.Millisecond, "commit-latency SLO threshold: the fraction of commits slower than this burns the latency error budget (0 disables the objective)")
		sloShed   = flag.Float64("slo-shed-ratio", 0.01, "shed-ratio SLO: allowed fraction of arrivals shed by admission control (<=0 disables the objective)")
		sloEvery  = flag.Duration("slo-eval-interval", 10*time.Second, "SLO engine sampling period")
	)
	flag.Parse()
	switch *wireCodec {
	case wire.CodecBinary, wire.CodecGob:
	default:
		log.Fatalf("aft-server: unknown wire codec %q", *wireCodec)
	}

	var mode aft.LatencyMode
	switch *lat {
	case "none":
		mode = aft.LatencyNone
	case "cloud":
		mode = aft.LatencyCloud
	case "cloud-fast":
		mode = aft.LatencyCloudFast
	default:
		log.Fatalf("aft-server: unknown latency mode %q", *lat)
	}

	// The observability plane: the flight recorder journals cluster
	// events (created before the store so WAL checkpoint rejections at
	// load time are captured), the collector stitches trace segments
	// forwarded by every tracer in the process, and the SLO engine grades
	// burn rates for /healthz.
	events := aft.NewEventJournal(*eventsCap)
	collector := aft.NewTraceCollector(0)
	defer func() {
		// A panic's flight recording is worth more than the panic alone:
		// persist the journal, then let the crash proceed.
		if r := recover(); r != nil {
			if err := events.DumpToFile(*eventsOut); err == nil {
				fmt.Fprintf(os.Stderr, "aft-server: event journal dumped to %s\n", *eventsOut)
			}
			panic(r)
		}
	}()

	var store aft.Store
	switch *backend {
	case "dynamodb":
		store = aft.NewDynamoDBStore(mode, *seed)
	case "s3":
		store = aft.NewS3Store(mode, *seed)
	case "redis":
		store = aft.NewRedisStore(mode, *seed, 0)
	case "wal":
		ws, err := walengine.Open(*storeDir, walengine.Options{Events: events, EventNode: *nodeID})
		if err != nil {
			log.Fatalf("aft-server: opening WAL store: %v", err)
		}
		store = ws
		fmt.Printf("aft-server: durable WAL store in %s\n", *storeDir)
	default:
		log.Fatalf("aft-server: unknown store %q", *backend)
	}
	// Deferred first so it runs LAST on the clean-shutdown path: the WAL
	// engine's Close flushes and fsyncs the log tail after the server has
	// drained and the maintenance pipeline has stopped.
	if cl, ok := store.(interface{ Close() error }); ok {
		defer func() {
			if err := cl.Close(); err != nil {
				log.Printf("aft-server: closing store: %v", err)
			}
		}()
	}

	sampleEvery := *traceEach
	if sampleEvery <= 0 {
		sampleEvery = -1
	}
	tracer := aft.NewTracer(aft.TracerOptions{
		Node:        *nodeID,
		SampleEvery: sampleEvery,
		Capacity:    *traceRing,
		MaxBytes:    *traceRB,
	})
	tracer.SetSink(collector)

	node, err := aft.NewNode(aft.NodeConfig{
		NodeID:          *nodeID,
		Store:           store,
		EnableDataCache: *cache,
		Tracer:          tracer,
		Events:          events,
		// Only the WAL store survives restarts, so only there does a
		// persisted watermark make the next Bootstrap incremental.
		PersistBootstrapWatermark: *backend == "wal",
		MetadataBudgetBytes:       *budget,
	})
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}
	// Recover committed state left by a previous process: a no-op over the
	// fresh in-memory simulators, but a WAL-backed server restarting on an
	// existing -store-dir must re-learn its Transaction Commit Set.
	if err := node.Bootstrap(context.Background()); err != nil {
		log.Fatalf("aft-server: bootstrap from storage: %v", err)
	}

	// Maintenance pipeline: multicast rounds feed the fault manager's tap
	// (§4.2); the periodic scan recovers commits a crashed predecessor
	// persisted but never announced, and the GC pass collects superseded
	// state (§5.2). The balancer fronts the node for in-process clients;
	// over the wire it only contributes its metric families.
	bus := multicast.NewBus()
	fm := faultmgr.New(store, faultmgr.StaticMembership{node})
	// The fault manager gets its own tracer identity so stitched traces
	// attribute recovery and delivery spans to "faultmgr" rather than to
	// the node that happened to host the scan — and so even a single-node
	// server produces multi-participant traces on /traces.
	fmTracer := aft.NewTracer(aft.TracerOptions{Node: "faultmgr", SampleEvery: -1})
	fmTracer.SetSink(collector)
	fm.SetTracer(fmTracer)
	bus.Tap(fm.Ingest)
	mc := multicast.NewMulticaster(bus, node, *mcPeriod, true)
	mc.SetTracer(tracer)
	mc.Start()
	defer mc.Stop()
	bal := lb.New(node)
	bal.SetJournal(events)

	stopGC := make(chan struct{})
	go maintenanceLoop(fm, node, *budget, *gcPeriod, stopGC)
	defer close(stopGC)
	if *ckptEvery > 0 {
		if ws, ok := store.(*walengine.Store); ok {
			go checkpointLoop(ws, *ckptEvery, stopGC)
		} else {
			log.Printf("aft-server: -checkpoint-interval ignored: store %q keeps no WAL", *backend)
		}
	}

	// The wire server is built before the registry so its aft_wire_*
	// families (frames, bytes, flushes, codec mix, pipeline depth) are
	// exported next to everything else.
	srv := wire.NewServer(node)
	srv.Codec = *wireCodec

	// SLO objectives: commit latency (fraction of commits slower than the
	// threshold burns the budget) and admission sheds over arrivals.
	health := aft.NewSLOEngine()
	if *sloCommit > 0 {
		health.AddObjective(telemetry.Objective{
			Name:   "commit_latency",
			Help:   fmt.Sprintf("commits faster than %s", *sloCommit),
			Target: 0.99,
			SLI:    telemetry.LatencySLI(node.CommitLatency, *sloCommit),
		})
	}
	if *sloShed > 0 {
		m := node.Metrics()
		health.AddObjective(telemetry.Objective{
			Name:   "shed_ratio",
			Help:   "arrivals admitted (not shed by admission control)",
			Target: 1 - *sloShed,
			SLI: telemetry.RatioSLI(
				func() uint64 { return uint64(m.OverloadShed.Load()) },
				func() uint64 { return uint64(m.Started.Load() + m.OverloadShed.Load()) },
			),
		})
	}
	stopSLO := health.Run(*sloEvery)
	defer stopSLO()

	reg := aft.NewMetricsRegistry()
	node.RegisterTelemetry(reg)
	tracer.RegisterTelemetry(reg)
	fmTracer.RegisterTelemetry(reg)
	events.RegisterTelemetry(reg)
	collector.RegisterTelemetry(reg)
	health.RegisterTelemetry(reg)
	bus.RegisterTelemetry(reg)
	fm.RegisterTelemetry(reg)
	bal.RegisterTelemetry(reg)
	wire.RegisterTelemetry(reg, "server", srv.Metrics())
	if ws, ok := store.(*walengine.Store); ok {
		ws.RegisterTelemetry(reg) // storage (backend="wal") + WAL probe
	} else if sm, ok := store.(interface{ Metrics() *storage.Metrics }); ok {
		sm.Metrics().RegisterTelemetry(reg, store.Name())
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}
	fmt.Printf("aft-server: node %s serving on %s (store=%s latency=%s wire-codec=%s)\n",
		*nodeID, bound, *backend, *lat, *wireCodec)

	if *debug != "" {
		// Lock-contention and allocation profiles tie to the protocol
		// counters served next to them:
		//
		//	curl http://<debug-addr>/metrics
		//	curl http://<debug-addr>/statz
		//	curl http://<debug-addr>/traces
		//	go tool pprof http://<debug-addr>/debug/pprof/profile
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Microsecond))
		mux := aft.DebugMuxWith(*nodeID, reg, tracer, aft.DebugOptions{
			Collector: collector,
			Events:    events,
			Health:    health,
		})
		go func() {
			if err := http.ListenAndServe(*debug, mux); err != nil {
				log.Printf("aft-server: debug endpoint: %v", err)
			}
		}()
		fmt.Printf("aft-server: debug endpoint (metrics, statz, traces, events, healthz, pprof) on %s\n", *debug)
	}

	// SIGQUIT persists the flight recorder before the runtime's stack
	// dump: the journal is re-raised to the default handler so the usual
	// goroutine dump (and exit) still happens.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if err := events.DumpToFile(*eventsOut); err != nil {
				log.Printf("aft-server: event journal dump: %v", err)
			} else {
				fmt.Fprintf(os.Stderr, "aft-server: event journal dumped to %s\n", *eventsOut)
			}
			signal.Reset(syscall.SIGQUIT)
			syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		}
	}()

	runServer(srv, node, *drain)
}

// maintenanceLoop periodically recovers unannounced commits from storage,
// runs one global-GC pass, and (with a budget set) brings the node's
// metadata memory back under it, until stop closes.
func maintenanceLoop(fm *faultmgr.Manager, node *aft.Node, budget int64, period time.Duration, stop <-chan struct{}) {
	if period <= 0 {
		period = 30 * time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), period)
			if err := fm.ScanStorageTraced(ctx); err != nil {
				log.Printf("aft-server: fault-manager scan: %v", err)
			}
			if _, err := fm.CollectOnceTraced(ctx, 0); err != nil {
				log.Printf("aft-server: global GC: %v", err)
			}
			if budget > 0 {
				if _, err := node.EnforceBudget(ctx); err != nil {
					log.Printf("aft-server: metadata budget enforcement: %v", err)
				}
			}
			cancel()
		}
	}
}

// checkpointLoop periodically checkpoints the WAL store's key index so a
// restart replays only the log tail written since, until stop closes.
func checkpointLoop(ws *walengine.Store, period time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), period)
			if _, err := ws.Checkpoint(ctx); err != nil && err != walengine.ErrCheckpointInProgress {
				log.Printf("aft-server: WAL checkpoint: %v", err)
			}
			cancel()
		}
	}
}

// runServer blocks until SIGINT/SIGTERM, then shuts down gracefully: the
// listener stops accepting, in-flight transactions get up to drain to
// finish (dangling sessions abandoned by dead clients are reaped by their
// propagated deadlines so they cannot hold up the drain), and only then
// do the caller's defers stop the maintenance pipeline and flush/close
// the store. A second signal forces immediate exit.
func runServer(srv *aft.Server, node *aft.Node, drain time.Duration) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("aft-server: draining (up to %s; signal again to force)\n", drain)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	go func() {
		// Second signal: skip the drain.
		select {
		case <-sig:
			fmt.Println("aft-server: forced shutdown")
			cancel()
		case <-ctx.Done():
		}
	}()
	go func() {
		// Abandoned sessions (clients that died mid-transaction) only
		// quiesce through the reaper; tick it so the drain converges.
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				node.ReapExpired(ctx, 0)
			}
		}
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("aft-server: shutdown forced with transactions in flight: %v", err)
		return
	}
	fmt.Println("aft-server: drained cleanly")
}
