// Command aft-server runs one AFT node as a TCP service.
//
// Usage:
//
//	aft-server -addr :7070 -node node-1 -store dynamodb -latency none
//	aft-server -store wal -store-dir /var/lib/aft   # durable disk backend
//
// The node serves the Table 1 API (StartTransaction / Get / Put /
// CommitTransaction / AbortTransaction) over the repository's wire
// protocol; connect with cmd/aft-client or aft.Dial. The storage backend
// is one of the repository's simulated cloud stores, or the durable
// write-ahead-log engine (-store wal), whose state survives restarts in
// -store-dir; multiple servers
// launched with -store pointing at the same external process would
// require a networked store, so a single server owns its store (the
// multi-node protocols are exercised in-process via aft.NewCluster).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"aft/aft"
	"aft/internal/storage"
	"aft/internal/storage/walengine"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address")
		nodeID   = flag.String("node", "aft-node-1", "node identifier")
		backend  = flag.String("store", "dynamodb", "storage backend: dynamodb|s3|redis|wal")
		storeDir = flag.String("store-dir", "aft-wal", "log directory for -store wal")
		lat      = flag.String("latency", "none", "latency mode: none|cloud|cloud-fast (simulated backends only)")
		cache    = flag.Bool("cache", true, "enable the read data cache")
		seed     = flag.Int64("seed", 1, "latency model seed")
		debug    = flag.String("debug-addr", "", "HTTP address for /debug/pprof/* and /statz (empty disables)")
	)
	flag.Parse()

	var mode aft.LatencyMode
	switch *lat {
	case "none":
		mode = aft.LatencyNone
	case "cloud":
		mode = aft.LatencyCloud
	case "cloud-fast":
		mode = aft.LatencyCloudFast
	default:
		log.Fatalf("aft-server: unknown latency mode %q", *lat)
	}

	var store aft.Store
	switch *backend {
	case "dynamodb":
		store = aft.NewDynamoDBStore(mode, *seed)
	case "s3":
		store = aft.NewS3Store(mode, *seed)
	case "redis":
		store = aft.NewRedisStore(mode, *seed, 0)
	case "wal":
		var err error
		if store, err = aft.NewWALStore(*storeDir); err != nil {
			log.Fatalf("aft-server: opening WAL store: %v", err)
		}
		fmt.Printf("aft-server: durable WAL store in %s\n", *storeDir)
	default:
		log.Fatalf("aft-server: unknown store %q", *backend)
	}

	node, err := aft.NewNode(aft.NodeConfig{
		NodeID:          *nodeID,
		Store:           store,
		EnableDataCache: *cache,
	})
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}
	// Recover committed state left by a previous process: a no-op over the
	// fresh in-memory simulators, but a WAL-backed server restarting on an
	// existing -store-dir must re-learn its Transaction Commit Set.
	if err := node.Bootstrap(context.Background()); err != nil {
		log.Fatalf("aft-server: bootstrap from storage: %v", err)
	}

	srv, bound, err := aft.Serve(node, *addr)
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}
	fmt.Printf("aft-server: node %s serving on %s (store=%s latency=%s)\n",
		*nodeID, bound, *backend, *lat)

	if *debug != "" {
		// The pprof import registered its handlers on DefaultServeMux;
		// /statz joins them so lock-contention and allocation profiles can
		// be tied to protocol counters in deployments:
		//
		//	go tool pprof http://<debug-addr>/debug/pprof/profile
		//	go tool pprof http://<debug-addr>/debug/pprof/mutex
		//	curl http://<debug-addr>/statz
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(int(time.Microsecond))
		http.HandleFunc("/statz", statzHandler(node))
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				log.Printf("aft-server: debug endpoint: %v", err)
			}
		}()
		fmt.Printf("aft-server: debug endpoint (pprof, statz) on %s\n", *debug)
	}

	runServer(srv)
}

// runServer blocks until an interrupt, then shuts the server down.
func runServer(srv *aft.Server) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aft-server: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("aft-server: close: %v", err)
	}
}

// statzHandler serves a point-in-time JSON snapshot of the node's protocol
// counters, the storage engine's operation counters, and the Go runtime's
// memory/scheduler stats — the numbers a profile needs for context.
func statzHandler(node *aft.Node) http.HandlerFunc {
	start := time.Now()
	return func(w http.ResponseWriter, r *http.Request) {
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		stats := map[string]any{
			"node_id":        node.ID(),
			"uptime_seconds": time.Since(start).Seconds(),
			"node":           node.Metrics().Snapshot(),
			"active_txns":    node.ActiveTransactions(),
			"metadata_size":  node.MetadataSize(),
			"runtime": map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"gomaxprocs":     runtime.GOMAXPROCS(0),
				"num_cpu":        runtime.NumCPU(),
				"heap_alloc":     mem.HeapAlloc,
				"heap_objects":   mem.HeapObjects,
				"total_alloc":    mem.TotalAlloc,
				"gc_cycles":      mem.NumGC,
				"gc_pause_total": time.Duration(mem.PauseTotalNs).String(),
			},
		}
		type storeMetrics interface{ Metrics() *storage.Metrics }
		if sm, ok := node.Store().(storeMetrics); ok {
			stats["storage"] = sm.Metrics().Snapshot()
		}
		type walMetrics interface{ WAL() *walengine.Metrics }
		if wm, ok := node.Store().(walMetrics); ok {
			stats["wal"] = wm.WAL().Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
