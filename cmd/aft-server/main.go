// Command aft-server runs one AFT node as a TCP service.
//
// Usage:
//
//	aft-server -addr :7070 -node node-1 -store dynamodb -latency none
//
// The node serves the Table 1 API (StartTransaction / Get / Put /
// CommitTransaction / AbortTransaction) over the repository's wire
// protocol; connect with cmd/aft-client or aft.Dial. The storage backend
// is one of the repository's simulated cloud stores; multiple servers
// launched with -store pointing at the same external process would
// require a networked store, so a single server owns its store (the
// multi-node protocols are exercised in-process via aft.NewCluster).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"aft/aft"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		nodeID  = flag.String("node", "aft-node-1", "node identifier")
		backend = flag.String("store", "dynamodb", "storage backend: dynamodb|s3|redis")
		lat     = flag.String("latency", "none", "latency mode: none|cloud|cloud-fast")
		cache   = flag.Bool("cache", true, "enable the read data cache")
		seed    = flag.Int64("seed", 1, "latency model seed")
	)
	flag.Parse()

	var mode aft.LatencyMode
	switch *lat {
	case "none":
		mode = aft.LatencyNone
	case "cloud":
		mode = aft.LatencyCloud
	case "cloud-fast":
		mode = aft.LatencyCloudFast
	default:
		log.Fatalf("aft-server: unknown latency mode %q", *lat)
	}

	var store aft.Store
	switch *backend {
	case "dynamodb":
		store = aft.NewDynamoDBStore(mode, *seed)
	case "s3":
		store = aft.NewS3Store(mode, *seed)
	case "redis":
		store = aft.NewRedisStore(mode, *seed, 0)
	default:
		log.Fatalf("aft-server: unknown store %q", *backend)
	}

	node, err := aft.NewNode(aft.NodeConfig{
		NodeID:          *nodeID,
		Store:           store,
		EnableDataCache: *cache,
	})
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}

	srv, bound, err := aft.Serve(node, *addr)
	if err != nil {
		log.Fatalf("aft-server: %v", err)
	}
	fmt.Printf("aft-server: node %s serving on %s (store=%s latency=%s)\n",
		*nodeID, bound, *backend, *lat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aft-server: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("aft-server: close: %v", err)
	}
}
