// Command aft-client is an interactive client for an aft-server, useful
// for poking at the transactional API by hand.
//
// Usage:
//
//	aft-client -addr localhost:7070
//	aft-client -trace            # trace every transaction end to end
//
// With -trace, each begin mints a client trace context that rides the
// wire protocol, so the serving node retains the transaction's full
// span tree regardless of its sampling policy; the printed trace ID can
// be looked up on the server's /traces debug endpoint.
//
// Commands (one per line):
//
//	begin                 start a transaction
//	get <key>             read a key in the current transaction
//	put <key> <value>     buffer a write in the current transaction
//	commit                commit the current transaction
//	abort                 abort the current transaction
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"aft/aft"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "aft-server address")
	trace := flag.Bool("trace", false, "trace every transaction (print the trace ID; look it up on the server's /traces endpoint)")
	flag.Parse()

	client, err := aft.Dial(*addr)
	if err != nil {
		log.Fatalf("aft-client: %v", err)
	}
	defer client.Close()
	fmt.Printf("connected to %s (node %s)\n", *addr, client.ID())

	ctx := context.Background()
	var txn *aft.Txn
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "begin":
			if txn != nil {
				fmt.Println("error: transaction already open; commit or abort first")
				break
			}
			bctx := ctx
			traceID := ""
			if *trace {
				bctx, traceID = aft.Traced(ctx)
			}
			t, err := aft.Begin(bctx, client)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			txn = t
			if traceID != "" {
				fmt.Println("txn", txn.ID(), "trace", traceID)
			} else {
				fmt.Println("txn", txn.ID())
			}
		case "get":
			if txn == nil || len(fields) != 2 {
				fmt.Println("usage: get <key> (inside a transaction)")
				break
			}
			v, err := txn.Get(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("%q\n", v)
		case "put":
			if txn == nil || len(fields) < 3 {
				fmt.Println("usage: put <key> <value> (inside a transaction)")
				break
			}
			if err := txn.Put(fields[1], []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			}
		case "commit":
			if txn == nil {
				fmt.Println("error: no open transaction")
				break
			}
			id, err := txn.Commit()
			txn = nil
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println("committed", id)
		case "abort":
			if txn == nil {
				fmt.Println("error: no open transaction")
				break
			}
			if err := txn.Abort(); err != nil {
				fmt.Println("error:", err)
			}
			txn = nil
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: begin | get <k> | put <k> <v> | commit | abort | quit")
		}
		fmt.Print("> ")
	}
}
