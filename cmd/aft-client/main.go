// Command aft-client is an interactive client for an aft-server, useful
// for poking at the transactional API by hand.
//
// Usage:
//
//	aft-client -addr localhost:7070
//	aft-client -trace            # trace every transaction end to end
//	aft-client -trace -debug-addr localhost:7071   # and fetch stitched trees
//
// With -trace, each begin mints a client trace context that rides the
// wire protocol, so the serving node retains the transaction's full
// span tree regardless of its sampling policy; the printed trace ID can
// be looked up on the server's /traces debug endpoint. With -debug-addr
// also set, the "trace <id>" command fetches that endpoint and renders
// the stitched multi-node span tree: one section per contributing node
// (the serving node, peers that merged the multicast delivery, the
// fault manager), spans on the shared trace timeline.
//
// Commands (one per line):
//
//	begin                 start a transaction
//	get <key>             read a key in the current transaction
//	put <key> <value>     buffer a write in the current transaction
//	commit                commit the current transaction
//	abort                 abort the current transaction
//	trace <id>            fetch and render a stitched trace (-debug-addr)
//	quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"aft/aft"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "aft-server address")
	trace := flag.Bool("trace", false, "trace every transaction (print the trace ID; look it up on the server's /traces endpoint)")
	debugAddr := flag.String("debug-addr", "", "server debug endpoint for the trace command (e.g. localhost:7071)")
	flag.Parse()

	client, err := aft.Dial(*addr)
	if err != nil {
		log.Fatalf("aft-client: %v", err)
	}
	defer client.Close()
	fmt.Printf("connected to %s (node %s)\n", *addr, client.ID())

	ctx := context.Background()
	var txn *aft.Txn
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "begin":
			if txn != nil {
				fmt.Println("error: transaction already open; commit or abort first")
				break
			}
			bctx := ctx
			traceID := ""
			if *trace {
				bctx, traceID = aft.Traced(ctx)
			}
			t, err := aft.Begin(bctx, client)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			txn = t
			if traceID != "" {
				fmt.Println("txn", txn.ID(), "trace", traceID)
			} else {
				fmt.Println("txn", txn.ID())
			}
		case "get":
			if txn == nil || len(fields) != 2 {
				fmt.Println("usage: get <key> (inside a transaction)")
				break
			}
			v, err := txn.Get(fields[1])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("%q\n", v)
		case "put":
			if txn == nil || len(fields) < 3 {
				fmt.Println("usage: put <key> <value> (inside a transaction)")
				break
			}
			if err := txn.Put(fields[1], []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			}
		case "commit":
			if txn == nil {
				fmt.Println("error: no open transaction")
				break
			}
			id, err := txn.Commit()
			txn = nil
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println("committed", id)
		case "abort":
			if txn == nil {
				fmt.Println("error: no open transaction")
				break
			}
			if err := txn.Abort(); err != nil {
				fmt.Println("error:", err)
			}
			txn = nil
		case "trace":
			if len(fields) != 2 {
				fmt.Println("usage: trace <id>")
				break
			}
			if *debugAddr == "" {
				fmt.Println("error: trace command needs -debug-addr")
				break
			}
			if err := showStitched(*debugAddr, fields[1]); err != nil {
				fmt.Println("error:", err)
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: begin | get <k> | put <k> <v> | commit | abort | trace <id> | quit")
		}
		fmt.Print("> ")
	}
}

// stitched mirrors the /traces payload shape (telemetry.StitchedTrace);
// decoded loosely so the client works against any server version that
// serves at least these fields.
type stitched struct {
	TraceID string    `json:"trace_id"`
	TxID    string    `json:"tx_id"`
	Nodes   []string  `json:"nodes"`
	Start   time.Time `json:"start"`
	Micros  int64     `json:"duration_us"`
	Status  string    `json:"status"`
	Spans   []struct {
		Name        string            `json:"name"`
		StartMicros int64             `json:"start_us"`
		Micros      int64             `json:"duration_us"`
		Attrs       map[string]string `json:"attrs"`
	} `json:"spans"`
}

// showStitched fetches one stitched trace from the server's debug
// endpoint and renders its multi-node span tree: spans grouped by
// contributing node, each on the shared trace timeline.
func showStitched(debugAddr, traceID string) error {
	url := fmt.Sprintf("http://%s/traces?trace_id=%s", debugAddr, traceID)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var payload struct {
		Traces []stitched `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}
	if len(payload.Traces) == 0 {
		return fmt.Errorf("trace %s not found on %s (evicted, unsampled, or not yet forwarded)", traceID, debugAddr)
	}
	st := payload.Traces[0]
	fmt.Printf("trace %s  tx=%s  status=%s  %dus  nodes=%s\n",
		st.TraceID, st.TxID, st.Status, st.Micros, strings.Join(st.Nodes, ","))
	// Group by origin node, preserving each group's timeline order.
	byNode := make(map[string][]int)
	for i, sp := range st.Spans {
		n := sp.Attrs["node"]
		byNode[n] = append(byNode[n], i)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Printf("  [%s]\n", n)
		for _, i := range byNode[n] {
			sp := st.Spans[i]
			var attrs []string
			for k, v := range sp.Attrs {
				if k == "node" {
					continue
				}
				attrs = append(attrs, k+"="+v)
			}
			sort.Strings(attrs)
			line := fmt.Sprintf("    %8dus +%-8d %s", sp.StartMicros, sp.Micros, sp.Name)
			if len(attrs) > 0 {
				line += "  " + strings.Join(attrs, " ")
			}
			fmt.Println(line)
		}
	}
	return nil
}
