// Command aft-bench regenerates the paper's evaluation tables and figures
// (§6) against the simulated substrates, plus the repo's own scaling
// scenarios (sharded metadata exchange).
//
// Usage:
//
//	aft-bench -experiment all                 # every figure and table
//	aft-bench -experiment fig3 -scale 0.1     # one experiment, 10x speed
//	aft-bench -experiment fig7 -quick         # CI-sized run
//	aft-bench -experiment sharded -json out/  # broadcast vs sharded exchange
//	aft-bench chaos -seed 7                   # alias: seeded fault-injection campaign
//	aft-bench -experiment chaos -seed 7 -chaos-kills 3 -chaos-error-rate 0.05
//	aft-bench durability                      # WAL engine: fsync coalescing, recovery, storage-crash campaign
//	aft-bench resilience -quick -scale 0      # network partitions + overload survival, CI-sized
//	aft-bench -experiment fig7 -store wal     # any experiment over any backend
//
// Experiments: fig2, fig3 (includes table2), fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, ablation, sharded, parallel, readpath, chaos, durability,
// telemetry (instrumentation-overhead comparison), resilience (network
// partitions, conn resets, and overload through the real wire stack),
// recovery (WAL checkpoints vs full replay, incremental bootstrap,
// metadata-budget spill, and a crash campaign over all three).
// With -debug-addr set, a side HTTP listener serves /statz and the
// /debug/pprof/ profiler suite for the duration of the run.
// The -store flag overrides the storage backend every experiment builds
// (dynamodb|s3|redis|wal; default: each experiment's own choice). Output
// latencies and throughputs are
// reported in paper-equivalent units (measured values divided by the time
// scale).
//
// Every run also writes machine-readable results to BENCH_<name>.json in
// the -json directory ("" disables): the rendered tables plus, for the
// sharded and parallel experiments, the raw per-cell measurements
// (throughput, p50/p99 latency, and per-cell scaling/coalescing detail).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"aft/aft"
	"aft/internal/experiments"
)

// benchResult is the BENCH_<name>.json schema.
type benchResult struct {
	Experiment      string                       `json:"experiment"`
	Scale           float64                      `json:"scale"`
	Quick           bool                         `json:"quick"`
	Seed            int64                        `json:"seed"`
	Payload         int                          `json:"payload"`
	WallTimeMS      int64                        `json:"wall_time_ms"`
	Store           string                       `json:"store,omitempty"`
	Tables          []experiments.Table          `json:"tables"`
	ShardedCells    []experiments.ShardedCell    `json:"sharded_cells,omitempty"`
	ParallelCells   []experiments.ParallelCell   `json:"parallel_cells,omitempty"`
	ReadPathCells   []experiments.ReadPathCell   `json:"readpath_cells,omitempty"`
	ChaosCells      []experiments.ChaosCell      `json:"chaos_cells,omitempty"`
	DurabilityCells []experiments.DurabilityCell `json:"durability_cells,omitempty"`
	TelemetryCells  []experiments.TelemetryCell  `json:"telemetry_cells,omitempty"`
	ObsPlaneCells   []experiments.ObsPlaneCell   `json:"obsplane_cells,omitempty"`
	ResilienceCells []experiments.ResilienceCell `json:"resilience_cells,omitempty"`
	RecoveryCells   []experiments.RecoveryCell   `json:"recovery_cells,omitempty"`
	WireCells       []experiments.WireCell       `json:"wire_cells,omitempty"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: all|fig2|fig3|table2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|sharded|parallel|readpath|chaos|durability|telemetry|obsplane|resilience|recovery|wire")
		scale      = flag.Float64("scale", 0.1, "latency time scale: 1.0 = paper speed, 0.1 = 10x faster, 0 = no latency")
		quick      = flag.Bool("quick", false, "shrink workloads ~10x")
		seed       = flag.Int64("seed", 42, "random seed")
		payload    = flag.Int("payload", 4096, "value size in bytes")
		backend    = flag.String("store", "", "storage backend override for every experiment: dynamodb|s3|redis|wal; empty keeps each experiment's default")
		jsonDir    = flag.String("json", ".", "directory for BENCH_<name>.json results; empty disables")
		debug      = flag.String("debug-addr", "", "HTTP address for /statz and /debug/pprof/* during the run (empty disables)")

		chaosErrRate     = flag.Float64("chaos-error-rate", 0, "chaos: transient-failure probability per storage op; 0 = default")
		chaosPartialRate = flag.Float64("chaos-partial-rate", 0, "chaos: partial-batch-failure probability per batch op; 0 = default")
		chaosSpikeRate   = flag.Float64("chaos-spike-rate", 0, "chaos: latency-spike probability per storage op; 0 = default")
		chaosKills       = flag.Int("chaos-kills", 0, "chaos: node kills scheduled per campaign; 0 = default")
		chaosRequests    = flag.Int("chaos-requests", 0, "chaos: requests per campaign; 0 = default")
		wireCodec        = flag.String("wire-codec", "", "wire: restrict the codec sweep to binary|gob; empty compares both")
	)
	// Allow "aft-bench chaos -seed 7"-style invocation: a leading bare
	// word selects the experiment.
	args := os.Args[1:]
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		if err := flag.CommandLine.Parse(args[1:]); err != nil {
			os.Exit(2)
		}
		*experiment = args[0]
	} else {
		flag.Parse()
	}

	switch *backend {
	case "", "dynamodb", "s3", "redis", "wal":
	default:
		fmt.Fprintf(os.Stderr, "aft-bench: unknown store %q\n", *backend)
		os.Exit(2)
	}
	if *debug != "" {
		// Experiments build their nodes internally, so the registry here
		// carries only the process-level /statz runtime section — the point
		// of the endpoint is profiling long runs with /debug/pprof/.
		go func() {
			mux := aft.DebugMux("aft-bench", aft.NewMetricsRegistry(), nil)
			if err := http.ListenAndServe(*debug, mux); err != nil {
				fmt.Fprintf(os.Stderr, "aft-bench: debug endpoint: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoint (statz, pprof) on %s\n", *debug)
	}
	// Reclaim -store wal log directories even when an experiment panics
	// (os.Exit paths call it explicitly — deferred functions don't run
	// there).
	defer experiments.CleanupTempStores()
	opts := experiments.Options{
		Scale: *scale, Quick: *quick, Seed: *seed, Payload: *payload,
		Backend:        *backend,
		ChaosErrorRate: *chaosErrRate, ChaosPartialRate: *chaosPartialRate,
		ChaosSpikeRate: *chaosSpikeRate, ChaosKills: *chaosKills,
		ChaosRequests: *chaosRequests,
		WireCodec:     *wireCodec,
	}

	type exp struct {
		name string
		run  func(experiments.Options) ([]experiments.Table, error)
	}
	one := func(f func(experiments.Options) (experiments.Table, error)) func(experiments.Options) ([]experiments.Table, error) {
		return func(o experiments.Options) ([]experiments.Table, error) {
			t, err := f(o)
			return []experiments.Table{t}, err
		}
	}
	fig3 := func(o experiments.Options) ([]experiments.Table, error) {
		a, b, err := experiments.Fig3Table2(o)
		return []experiments.Table{a, b}, err
	}
	all := []exp{
		{"fig2", one(experiments.Fig2)},
		{"fig3", fig3},
		{"fig4", one(experiments.Fig4)},
		{"fig5", one(experiments.Fig5)},
		{"fig6", one(experiments.Fig6)},
		{"fig7", one(experiments.Fig7)},
		{"fig8", one(experiments.Fig8)},
		{"fig9", one(experiments.Fig9)},
		{"fig10", one(experiments.Fig10)},
		{"ablation", one(experiments.Ablation)},
		{"sharded", one(experiments.Sharded)},
		{"parallel", one(experiments.Parallel)},
		{"readpath", one(experiments.ReadPath)},
		{"chaos", one(experiments.Chaos)},
		{"durability", one(experiments.Durability)},
		{"telemetry", one(experiments.Telemetry)},
		{"obsplane", one(experiments.ObsPlane)},
		{"resilience", one(experiments.Resilience)},
		{"recovery", one(experiments.Recovery)},
		{"wire", one(experiments.Wire)},
	}

	selected := map[string]bool{}
	switch *experiment {
	case "all":
		for _, e := range all {
			selected[e.name] = true
		}
	case "table2":
		selected["fig3"] = true
	default:
		selected[*experiment] = true
	}

	ran := false
	for _, e := range all {
		if !selected[e.name] {
			continue
		}
		ran = true
		fmt.Printf("running %s (scale=%.2g quick=%v)...\n", e.name, *scale, *quick)
		start := time.Now()
		res := benchResult{
			Experiment: e.name, Scale: *scale, Quick: *quick,
			Seed: *seed, Payload: *payload, Store: *backend,
		}
		var err error
		switch e.name {
		case "sharded":
			// The sharded and parallel experiments expose raw cells;
			// render the table from them so the run happens once.
			res.ShardedCells, err = experiments.ShardedCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ShardedTable(res.ShardedCells)
				res.Tables = []experiments.Table{t}
			}
		case "parallel":
			res.ParallelCells, err = experiments.ParallelCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ParallelTable(res.ParallelCells)
				res.Tables = []experiments.Table{t}
			}
		case "readpath":
			res.ReadPathCells, err = experiments.ReadPathCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ReadPathTable(res.ReadPathCells)
				res.Tables = []experiments.Table{t}
			}
		case "chaos":
			res.ChaosCells, err = experiments.ChaosCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ChaosTable(res.ChaosCells)
				res.Tables = []experiments.Table{t}
			}
		case "durability":
			res.DurabilityCells, err = experiments.DurabilityCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.DurabilityTable(res.DurabilityCells)
				res.Tables = []experiments.Table{t}
			}
		case "telemetry":
			res.TelemetryCells, err = experiments.TelemetryCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.TelemetryTable(res.TelemetryCells)
				res.Tables = []experiments.Table{t}
			}
		case "obsplane":
			res.ObsPlaneCells, err = experiments.ObsPlaneCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ObsPlaneTable(res.ObsPlaneCells)
				res.Tables = []experiments.Table{t}
			}
		case "resilience":
			res.ResilienceCells, err = experiments.ResilienceCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.ResilienceTable(res.ResilienceCells)
				res.Tables = []experiments.Table{t}
			}
		case "recovery":
			res.RecoveryCells, err = experiments.RecoveryCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.RecoveryTable(res.RecoveryCells)
				res.Tables = []experiments.Table{t}
			}
		case "wire":
			res.WireCells, err = experiments.WireCells(opts)
			if err == nil {
				var t experiments.Table
				t, err = experiments.WireTable(res.WireCells)
				res.Tables = []experiments.Table{t}
			}
		default:
			res.Tables, err = e.run(opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aft-bench: %s: %v\n", e.name, err)
			experiments.CleanupTempStores()
			os.Exit(1)
		}
		// The chaos and resilience campaigns' contract is bit-for-bit
		// determinism per seed (resilience quarantines its wall-clock
		// numbers in each cell's `measured` block); wall time would be
		// one more nondeterministic field, so it is omitted from those
		// experiments' output and JSON.
		deterministic := e.name == "chaos" || e.name == "resilience"
		if !deterministic {
			res.WallTimeMS = time.Since(start).Milliseconds()
		}
		for _, t := range res.Tables {
			t.Print(os.Stdout)
		}
		if !deterministic {
			fmt.Printf("  (%s wall time)\n", time.Since(start).Round(time.Millisecond))
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+e.name+".json")
			if err := writeJSON(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "aft-bench: writing %s: %v\n", path, err)
				experiments.CleanupTempStores()
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	experiments.CleanupTempStores()
	if !ran {
		fmt.Fprintf(os.Stderr, "aft-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
