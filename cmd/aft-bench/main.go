// Command aft-bench regenerates the paper's evaluation tables and figures
// (§6) against the simulated substrates.
//
// Usage:
//
//	aft-bench -experiment all                 # every figure and table
//	aft-bench -experiment fig3 -scale 0.1     # one experiment, 10x speed
//	aft-bench -experiment fig7 -quick         # CI-sized run
//
// Experiments: fig2, fig3 (includes table2), fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, ablation. Output latencies and throughputs are reported in
// paper-equivalent units (measured values divided by the time scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aft/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: all|fig2|fig3|table2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation")
		scale      = flag.Float64("scale", 0.1, "latency time scale: 1.0 = paper speed, 0.1 = 10x faster, 0 = no latency")
		quick      = flag.Bool("quick", false, "shrink workloads ~10x")
		seed       = flag.Int64("seed", 42, "random seed")
		payload    = flag.Int("payload", 4096, "value size in bytes")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Quick: *quick, Seed: *seed, Payload: *payload}

	type exp struct {
		name string
		run  func(experiments.Options) ([]experiments.Table, error)
	}
	one := func(f func(experiments.Options) (experiments.Table, error)) func(experiments.Options) ([]experiments.Table, error) {
		return func(o experiments.Options) ([]experiments.Table, error) {
			t, err := f(o)
			return []experiments.Table{t}, err
		}
	}
	fig3 := func(o experiments.Options) ([]experiments.Table, error) {
		a, b, err := experiments.Fig3Table2(o)
		return []experiments.Table{a, b}, err
	}
	all := []exp{
		{"fig2", one(experiments.Fig2)},
		{"fig3", fig3},
		{"fig4", one(experiments.Fig4)},
		{"fig5", one(experiments.Fig5)},
		{"fig6", one(experiments.Fig6)},
		{"fig7", one(experiments.Fig7)},
		{"fig8", one(experiments.Fig8)},
		{"fig9", one(experiments.Fig9)},
		{"fig10", one(experiments.Fig10)},
		{"ablation", one(experiments.Ablation)},
	}

	selected := map[string]bool{}
	switch *experiment {
	case "all":
		for _, e := range all {
			selected[e.name] = true
		}
	case "table2":
		selected["fig3"] = true
	default:
		selected[*experiment] = true
	}

	ran := false
	for _, e := range all {
		if !selected[e.name] {
			continue
		}
		ran = true
		fmt.Printf("running %s (scale=%.2g quick=%v)...\n", e.name, *scale, *quick)
		start := time.Now()
		tables, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aft-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Print(os.Stdout)
		}
		fmt.Printf("  (%s wall time)\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aft-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
